package plan

import "testing"

// TestPipelineBreakerVocabulary pins which operators break the streaming
// pipeline (they must see all input before emitting) and which stream
// batch-at-a-time; Streams is the exact complement.
func TestPipelineBreakerVocabulary(t *testing.T) {
	breakers := map[OpKind]bool{
		OpDimBuild:   true,
		OpScan:       false,
		OpFilter:     false,
		OpJoinProbe:  false,
		OpAggregate:  true,
		OpMerge:      true,
		OpOrderLimit: true,
	}
	for kind, want := range breakers {
		if got := kind.PipelineBreaker(); got != want {
			t.Errorf("%s.PipelineBreaker() = %v, want %v", kind, got, want)
		}
		if got := kind.Streams(); got == kind.PipelineBreaker() {
			t.Errorf("%s.Streams() = %v must complement PipelineBreaker", kind, got)
		}
	}
}

// TestCompileAnnotatesBreakers checks that every compiled placed operator
// carries its kind's breaker flag, so executors and tools read the
// pipeline-breaker rule as data instead of re-deriving it.
func TestCompileAnnotatesBreakers(t *testing.T) {
	q := &Query{
		Fact:      "lineorder",
		FactPreds: []Predicate{{Table: "lineorder", Column: "lo_discount", Op: PredLT, Value: 3}},
		Joins:     []JoinEdge{{Dim: "date", FactFK: "lo_orderdate", DimKey: "d_datekey"}},
		Aggs:      []AggExpr{{Kind: AggSumCol, A: "lo_revenue"}},
		Limit:     5,
	}
	p := &Physical{Query: q, Joins: q.Joins}
	pp := Compile(p, DeviceCAPE)
	if len(pp.Ops) == 0 {
		t.Fatal("compile produced no operators")
	}
	kinds := map[OpKind]bool{}
	for _, op := range pp.Ops {
		kinds[op.Kind] = true
		if op.Breaker != op.Kind.PipelineBreaker() {
			t.Errorf("op %s: Breaker = %v, want %v", op.Kind, op.Breaker, op.Kind.PipelineBreaker())
		}
	}
	for _, k := range []OpKind{OpDimBuild, OpScan, OpFilter, OpJoinProbe, OpAggregate, OpMerge, OpOrderLimit} {
		if !kinds[k] {
			t.Errorf("compiled pipeline missing %s", k)
		}
	}
}
