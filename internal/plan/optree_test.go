package plan

import "testing"

// TestPipelineBreakerVocabulary pins which operators break the streaming
// pipeline (they must see all input before emitting) and which stream
// batch-at-a-time; Streams is the exact complement.
func TestPipelineBreakerVocabulary(t *testing.T) {
	breakers := map[OpKind]bool{
		OpDimBuild:   true,
		OpScan:       false,
		OpFilter:     false,
		OpJoinProbe:  false,
		OpAggregate:  true,
		OpMerge:      true,
		OpOrderLimit: true,
	}
	for kind, want := range breakers {
		if got := kind.PipelineBreaker(); got != want {
			t.Errorf("%s.PipelineBreaker() = %v, want %v", kind, got, want)
		}
		if got := kind.Streams(); got == kind.PipelineBreaker() {
			t.Errorf("%s.Streams() = %v must complement PipelineBreaker", kind, got)
		}
	}
}

// TestCompileAnnotatesBreakers checks that every compiled placed operator
// carries its kind's breaker flag, so executors and tools read the
// pipeline-breaker rule as data instead of re-deriving it.
func TestCompileAnnotatesBreakers(t *testing.T) {
	q := &Query{
		Fact:      "lineorder",
		FactPreds: []Predicate{{Table: "lineorder", Column: "lo_discount", Op: PredLT, Value: 3}},
		Joins:     []JoinEdge{{Dim: "date", FactFK: "lo_orderdate", DimKey: "d_datekey"}},
		Aggs:      []AggExpr{{Kind: AggSumCol, A: "lo_revenue"}},
		Limit:     5,
	}
	p := &Physical{Query: q, Joins: q.Joins}
	pp := Compile(p, DeviceCAPE)
	if len(pp.Ops) == 0 {
		t.Fatal("compile produced no operators")
	}
	kinds := map[OpKind]bool{}
	for _, op := range pp.Ops {
		kinds[op.Kind] = true
		if op.Breaker != op.Kind.PipelineBreaker() {
			t.Errorf("op %s: Breaker = %v, want %v", op.Kind, op.Breaker, op.Kind.PipelineBreaker())
		}
	}
	for _, k := range []OpKind{OpDimBuild, OpScan, OpFilter, OpJoinProbe, OpAggregate, OpMerge, OpOrderLimit} {
		if !kinds[k] {
			t.Errorf("compiled pipeline missing %s", k)
		}
	}
}

// TestEstimatesPreserveTrueZeros is the floor-removal regression: an
// operator estimated at zero cycles (an impossible predicate, an empty
// dimension) must surface as a true zero with its provenance intact —
// flooring it at 1 used to make the symmetric-ratio divergence telemetry
// print finite-but-meaningless ratios. EstimateCells keeps the zero;
// the legacy EstimateMap (whose consumers treat Cycles > 0 as "has
// estimate") drops it.
func TestEstimatesPreserveTrueZeros(t *testing.T) {
	q := &Query{
		Fact:      "lineorder",
		FactPreds: []Predicate{{Table: "lineorder", Column: "lo_discount", Op: PredLT, Value: 3}},
		Joins:     []JoinEdge{{Dim: "date", FactFK: "lo_orderdate", DimKey: "d_datekey"}},
		Aggs:      []AggExpr{{Kind: AggSumCol, A: "lo_revenue"}},
	}
	p := &Physical{Query: q, Joins: q.Joins}
	pp := Compile(p, DeviceCAPE)
	for i := range pp.Ops {
		op := &pp.Ops[i]
		op.EstSource = "histogram"
		if op.Kind == OpJoinProbe {
			op.EstCycles = 42
		}
	}

	var joinCells, zeroCells int
	for _, e := range pp.Estimates() {
		if e.Cycles == 0 {
			zeroCells++
			if e.EstSource == "" {
				t.Errorf("zero-cycle row %q lost its source", e.Row)
			}
		}
	}
	if zeroCells == 0 {
		t.Fatal("no zero-cycle estimate survived projection; the 1-cycle floor is back")
	}
	cells := pp.EstimateCells()
	for row, c := range cells {
		if c.Cycles == 0 && c.Source == "" {
			t.Errorf("cell %q: zero estimate with no source", row)
		}
		if row == "join:date" {
			joinCells++
			if c.Cycles != 42 {
				t.Errorf("join cell cycles = %d, want 42", c.Cycles)
			}
		}
	}
	if joinCells != 1 {
		t.Fatalf("join:date cell missing from EstimateCells")
	}
	if len(cells) <= len(pp.EstimateMap()) {
		t.Errorf("EstimateCells (%d rows) should keep zeros EstimateMap (%d rows) drops",
			len(cells), len(pp.EstimateMap()))
	}
	for row, cy := range pp.EstimateMap() {
		if cy <= 0 {
			t.Errorf("EstimateMap leaked zero-cycle row %q", row)
		}
	}
}
