package plan

import (
	"fmt"
	"strings"
	"testing"

	"castle/internal/sql"
	"castle/internal/storage"
)

// starDB builds a small star schema: fact(6 rows) with two dimensions.
func starDB() *storage.Database {
	db := storage.NewDatabase()

	d1 := storage.NewTable("dates")
	d1.AddIntColumn("d_datekey", []uint32{10, 11, 12})
	d1.AddIntColumn("d_year", []uint32{1992, 1992, 1993})
	db.Add(d1)

	d2 := storage.NewTable("part")
	d2.AddIntColumn("p_partkey", []uint32{1, 2})
	d2.AddStringColumn("p_mfgr", []string{"MFGR#1", "MFGR#2"})
	db.Add(d2)

	f := storage.NewTable("lineorder")
	f.AddIntColumn("lo_orderdate", []uint32{10, 10, 11, 11, 12, 12})
	f.AddIntColumn("lo_partkey", []uint32{1, 2, 1, 2, 1, 2})
	f.AddIntColumn("lo_revenue", []uint32{5, 10, 15, 20, 25, 30})
	f.AddIntColumn("lo_discount", []uint32{1, 2, 3, 4, 5, 6})
	f.AddIntColumn("lo_quantity", []uint32{10, 20, 30, 40, 50, 60})
	db.Add(f)
	return db
}

func bind(t *testing.T, q string) *Query {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bound, err := Bind(stmt, starDB())
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return bound
}

func bindErr(t *testing.T, q string) error {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Bind(stmt, starDB())
	if err == nil {
		t.Fatalf("Bind(%q) should fail", q)
	}
	return err
}

func TestBindSimpleAggregate(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue * lo_discount) AS revenue
		FROM lineorder, dates
		WHERE lo_orderdate = d_datekey AND d_year = 1992 AND lo_quantity < 25`)
	if q.Fact != "lineorder" {
		t.Fatalf("fact = %s", q.Fact)
	}
	if len(q.Joins) != 1 || q.Joins[0].Dim != "dates" || q.Joins[0].FactFK != "lo_orderdate" || q.Joins[0].DimKey != "d_datekey" {
		t.Fatalf("joins: %+v", q.Joins)
	}
	if len(q.FactPreds) != 1 || q.FactPreds[0].Op != PredLT || q.FactPreds[0].Value != 25 {
		t.Fatalf("fact preds: %+v", q.FactPreds)
	}
	if len(q.DimPreds["dates"]) != 1 || q.DimPreds["dates"][0].Value != 1992 {
		t.Fatalf("dim preds: %+v", q.DimPreds)
	}
	if len(q.Aggs) != 1 || q.Aggs[0].Kind != AggSumMul || q.Aggs[0].A != "lo_revenue" || q.Aggs[0].B != "lo_discount" {
		t.Fatalf("aggs: %+v", q.Aggs)
	}
}

func TestBindGroupByDimensionAttr(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue), d_year
		FROM lineorder, dates
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year`)
	if len(q.GroupBy) != 1 || q.GroupBy[0] != (ColRef{"dates", "d_year"}) {
		t.Fatalf("group by: %+v", q.GroupBy)
	}
	j := q.JoinFor("dates")
	if j == nil || len(j.NeedAttrs) != 1 || j.NeedAttrs[0] != "d_year" {
		t.Fatalf("join attrs: %+v", j)
	}
}

func TestBindStringPredicateEncoded(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue)
		FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr = 'MFGR#2'`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || ps[0].Op != PredEQ {
		t.Fatalf("preds: %+v", ps)
	}
	// 'MFGR#2' sorts after 'MFGR#1', so its code is 1.
	if ps[0].Value != 1 {
		t.Fatalf("encoded value = %d, want 1", ps[0].Value)
	}
}

func TestBindUnknownStringBecomesNever(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue)
		FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr = 'NO SUCH MFGR'`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || !ps[0].Never {
		t.Fatalf("preds: %+v", ps)
	}
	if ps[0].Matches(0) {
		t.Fatal("Never predicate must match nothing")
	}
}

func TestBindOrGroupFoldsToIn(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue)
		FROM lineorder, part
		WHERE lo_partkey = p_partkey AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || ps[0].Op != PredIn || len(ps[0].Values) != 2 {
		t.Fatalf("preds: %+v", ps)
	}
}

func TestBindBetween(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder WHERE lo_discount BETWEEN 2 AND 4`)
	if len(q.FactPreds) != 1 || q.FactPreds[0].Op != PredBetween ||
		q.FactPreds[0].Lo != 2 || q.FactPreds[0].Hi != 4 {
		t.Fatalf("preds: %+v", q.FactPreds)
	}
	p := q.FactPreds[0]
	if !p.Matches(3) || p.Matches(5) || p.Matches(1) {
		t.Fatal("between semantics wrong")
	}
}

func TestBindStringBetweenUsesDictBounds(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue)
		FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr BETWEEN 'MFGR#1' AND 'MFGR#2'`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || ps[0].Op != PredBetween || ps[0].Lo != 0 || ps[0].Hi != 1 {
		t.Fatalf("preds: %+v", ps)
	}
}

func TestBindReversedLiteral(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder WHERE 25 > lo_quantity`)
	if len(q.FactPreds) != 1 || q.FactPreds[0].Op != PredLT || q.FactPreds[0].Value != 25 {
		t.Fatalf("preds: %+v", q.FactPreds)
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		q    string
		frag string
	}{
		{"SELECT SUM(lo_revenue) FROM nosuch", "unknown table"},
		{"SELECT SUM(nosuchcol) FROM lineorder", "not found"},
		{"SELECT lo_revenue FROM lineorder", "not in GROUP BY"},
		{"SELECT SUM(lo_revenue), d_year FROM lineorder, dates WHERE lo_orderdate = d_datekey ORDER BY d_year", "not in GROUP BY"},
		{"SELECT SUM(lo_revenue), lo_quantity FROM lineorder", "not in GROUP BY"},
		{"SELECT SUM(d_year) FROM lineorder, dates WHERE lo_orderdate = d_datekey", "non-fact"},
		{"SELECT SUM(lo_revenue) FROM lineorder, dates WHERE lo_orderdate < d_datekey", "equalities"},
		{"SELECT SUM(lo_revenue) FROM lineorder, dates, part WHERE d_datekey = p_partkey", "fact and dimension"},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity = 'abc'", "non-string column"},
		{"SELECT SUM(lo_revenue), d_year FROM lineorder, dates GROUP BY d_year", "unjoined"},
		{"SELECT SUM(lo_revenue) FROM lineorder, part WHERE lo_partkey = p_partkey AND (p_mfgr = 'MFGR#1' OR lo_quantity = 5)", "mixes columns"},
		{"SELECT SUM(lo_revenue + lo_discount) FROM lineorder", "unsupported aggregate arithmetic"},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity > 'MFGR#1'", "non-string"},
	}
	for _, c := range cases {
		err := bindErr(t, c.q)
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Bind(%q) error %q does not mention %q", c.q, err, c.frag)
		}
	}
}

func TestBindDoubleJoinSameDimFails(t *testing.T) {
	bindErr(t, `SELECT SUM(lo_revenue) FROM lineorder, dates
		WHERE lo_orderdate = d_datekey AND lo_partkey = d_datekey`)
}

func TestPredicateMatchesAllOps(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    uint32
		want bool
	}{
		{Predicate{Op: PredEQ, Value: 5}, 5, true},
		{Predicate{Op: PredEQ, Value: 5}, 6, false},
		{Predicate{Op: PredNE, Value: 5}, 6, true},
		{Predicate{Op: PredLT, Value: 5}, 4, true},
		{Predicate{Op: PredLE, Value: 5}, 5, true},
		{Predicate{Op: PredGT, Value: 5}, 6, true},
		{Predicate{Op: PredGE, Value: 5}, 5, true},
		{Predicate{Op: PredGE, Value: 5}, 4, false},
		{Predicate{Op: PredIn, Values: []uint32{1, 3}}, 3, true},
		{Predicate{Op: PredIn, Values: []uint32{1, 3}}, 2, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%v.Matches(%d) = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestShapeClassification(t *testing.T) {
	q := &Query{}
	joins := []JoinEdge{{Dim: "a"}, {Dim: "b"}}
	cases := []struct {
		sw   int
		want Shape
	}{
		{0, LeftDeep},
		{1, ZigZag},
		{2, RightDeep},
	}
	for _, c := range cases {
		p := &Physical{Query: q, Joins: joins, Switch: c.sw}
		if got := p.Shape(); got != c.want {
			t.Errorf("switch=%d: shape = %v, want %v", c.sw, got, c.want)
		}
		if p.String() == "" {
			t.Error("empty plan string")
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []fmt.Stringer{
		PredEQ, PredBetween, PredIn,
		Predicate{Table: "t", Column: "c", Op: PredEQ, Value: 1},
		Predicate{Table: "t", Column: "c", Op: PredBetween, Lo: 1, Hi: 2},
		Predicate{Table: "t", Column: "c", Op: PredIn, Values: []uint32{1}},
		Predicate{Table: "t", Column: "c", Never: true},
		ColRef{"t", "c"},
		AggExpr{Kind: AggSumCol, A: "a"},
		AggExpr{Kind: AggSumMul, A: "a", B: "b"},
		AggExpr{Kind: AggSumSub, A: "a", B: "b"},
		AggExpr{Kind: AggCount},
		JoinEdge{Dim: "d", FactFK: "fk", DimKey: "k", NeedAttrs: []string{"a"}},
		LeftDeep, RightDeep, ZigZag,
	} {
		if s.String() == "" {
			t.Errorf("%T has empty String", s)
		}
	}
	q := bind(t, `SELECT SUM(lo_revenue), d_year FROM lineorder, dates WHERE lo_orderdate = d_datekey GROUP BY d_year`)
	if q.String() == "" {
		t.Error("query string empty")
	}
}

func TestBindOrderBy(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) AS revenue, d_year
		FROM lineorder, dates
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year
		ORDER BY d_year, revenue DESC`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("order terms: %+v", q.OrderBy)
	}
	if q.OrderBy[0].KeyIdx != 0 || q.OrderBy[0].AggIdx != -1 || q.OrderBy[0].Desc {
		t.Fatalf("first term: %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].AggIdx != 0 || q.OrderBy[1].KeyIdx != -1 || !q.OrderBy[1].Desc {
		t.Fatalf("second term: %+v", q.OrderBy[1])
	}
	for _, o := range q.OrderBy {
		if o.String() == "" {
			t.Error("empty OrderTerm string")
		}
	}
}

func TestBindOrderByErrors(t *testing.T) {
	bindErr(t, `SELECT SUM(lo_revenue), d_year FROM lineorder, dates
		WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY lo_quantity`)
	bindErr(t, `SELECT SUM(lo_revenue), d_year FROM lineorder, dates
		WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY nosuch`)
}

func TestBindMinMaxAvg(t *testing.T) {
	q := bind(t, `SELECT MIN(lo_revenue), MAX(lo_revenue) AS peak, AVG(lo_quantity)
		FROM lineorder WHERE lo_discount < 5`)
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs: %+v", q.Aggs)
	}
	if q.Aggs[0].Kind != AggMin || q.Aggs[1].Kind != AggMax || q.Aggs[2].Kind != AggAvg {
		t.Fatalf("kinds: %+v", q.Aggs)
	}
	if q.Aggs[1].Alias != "peak" {
		t.Fatalf("alias: %+v", q.Aggs[1])
	}
}

func TestBindMinMaxAvgErrors(t *testing.T) {
	cases := []struct{ q, frag string }{
		{"SELECT MIN(lo_revenue * lo_discount) FROM lineorder", "must be a column"},
		{"SELECT MAX(d_year) FROM lineorder, dates WHERE lo_orderdate = d_datekey", "non-fact"},
		{"SELECT AVG(nope) FROM lineorder", "not found"},
	}
	for _, c := range cases {
		err := bindErr(t, c.q)
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Bind(%q) error %q does not mention %q", c.q, err, c.frag)
		}
	}
}

func TestBindFlippedInequalities(t *testing.T) {
	cases := []struct {
		q  string
		op PredOp
		v  uint32
	}{
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE 25 < lo_quantity", PredGT, 25},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE 25 <= lo_quantity", PredGE, 25},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE 25 >= lo_quantity", PredLE, 25},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE 25 = lo_quantity", PredEQ, 25},
		{"SELECT SUM(lo_revenue) FROM lineorder WHERE 25 <> lo_quantity", PredNE, 25},
	}
	for _, c := range cases {
		q := bind(t, c.q)
		if len(q.FactPreds) != 1 || q.FactPreds[0].Op != c.op || q.FactPreds[0].Value != c.v {
			t.Errorf("Bind(%q) preds = %+v, want op %v value %d", c.q, q.FactPreds, c.op, c.v)
		}
	}
}

func TestBindNEUnknownStringDropsPredicate(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr <> 'NO SUCH'`)
	if len(q.DimPreds["part"]) != 0 {
		t.Fatalf("NE against unknown string should drop: %+v", q.DimPreds["part"])
	}
}

func TestBindInWithUnknownStrings(t *testing.T) {
	// All values unknown: Never predicate.
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr IN ('NOPE1', 'NOPE2')`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || !ps[0].Never {
		t.Fatalf("preds: %+v", ps)
	}
	// Mixed known/unknown: only the known survive.
	q = bind(t, `SELECT SUM(lo_revenue) FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr IN ('MFGR#1', 'NOPE')`)
	ps = q.DimPreds["part"]
	if len(ps) != 1 || ps[0].Never || len(ps[0].Values) != 1 {
		t.Fatalf("preds: %+v", ps)
	}
}

func TestBindStringBetweenNoOverlap(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder, part
		WHERE lo_partkey = p_partkey AND p_mfgr BETWEEN 'ZZZ1' AND 'ZZZ9'`)
	ps := q.DimPreds["part"]
	if len(ps) != 1 || !ps[0].Never {
		t.Fatalf("empty string range should be Never: %+v", ps)
	}
}

func TestBindMoreErrors(t *testing.T) {
	cases := []string{
		`SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity BETWEEN 'a' AND 5`,
		`SELECT SUM(lo_revenue) FROM lineorder WHERE 5 = 6`,
		`SELECT SUM(lo_revenue) FROM lineorder, part WHERE lo_partkey = p_partkey AND (p_mfgr = 'MFGR#1' OR p_mfgr < 'MFGR#2')`,
		`SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity < 99999999999`,
		`SELECT SUM(lo_revenue) FROM lineorder WHERE lo_quantity IN ('abc')`,
	}
	for _, q := range cases {
		bindErr(t, q)
	}
}

func TestQueryJoinForMissing(t *testing.T) {
	q := bind(t, `SELECT SUM(lo_revenue) FROM lineorder`)
	if q.JoinFor("nope") != nil {
		t.Fatal("JoinFor on unjoined table should be nil")
	}
}

func TestPredOpStrings(t *testing.T) {
	for op := PredEQ; op <= PredIn; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", int(op))
		}
	}
	if PredOp(99).String() == "" || Shape(99).String() == "" {
		t.Error("out-of-range values should render")
	}
	if (Predicate{Op: PredNE, Table: "t", Column: "c", Value: 4}).String() == "" {
		t.Error("NE predicate string")
	}
}
