package plan

// shared.go defines the multi-query shared-scan node: one sweep of a fact
// table evaluated against N member predicate sets, feeding N downstream
// tails. The node is purely structural — executors (internal/exec) walk the
// member plans morsel-by-morsel; the server's coalescing window decides
// which queries become members.

import (
	"fmt"
	"strings"
)

// SharedScan groups N physical plans that sweep the same fact table into
// one fused scan. Each member keeps its own predicate sets, join order and
// aggregation tail; only the pass over the fact columns is shared.
type SharedScan struct {
	// Fact is the common fact relation every member sweeps.
	Fact string
	// Members are the fused plans, in admission order. Member results are
	// produced independently and must be bit-identical to solo execution.
	Members []*Physical
}

// NewSharedScan validates that every member sweeps the same fact table and
// returns the fused node. It requires at least one member; a single-member
// group is legal (it degenerates to a solo sweep) so callers can treat
// group construction uniformly.
func NewSharedScan(members []*Physical) (*SharedScan, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("plan: shared scan needs at least one member")
	}
	fact := members[0].Query.Fact
	for i, m := range members {
		if m == nil || m.Query == nil {
			return nil, fmt.Errorf("plan: shared scan member %d is nil", i)
		}
		if m.Query.Fact != fact {
			return nil, fmt.Errorf("plan: shared scan member %d sweeps %q, group sweeps %q",
				i, m.Query.Fact, fact)
		}
	}
	return &SharedScan{Fact: fact, Members: members}, nil
}

// SharedColumns returns the union of fact-storage columns the fused sweep
// must load per morsel: predicate columns, join foreign keys, aggregate
// inputs and fact-side group-by columns across all members. Dimension
// attributes are excluded — they are materialized per member by the joins,
// not streamed from fact storage. The result is in first-use order so the
// register layout is deterministic.
func (s *SharedScan) SharedColumns() []string {
	seen := make(map[string]struct{})
	var cols []string
	add := func(name string) {
		if name == "" {
			return
		}
		if _, dup := seen[name]; dup {
			return
		}
		seen[name] = struct{}{}
		cols = append(cols, name)
	}
	for _, m := range s.Members {
		q := m.Query
		for _, p := range q.FactPreds {
			add(p.Column)
		}
		for _, j := range m.Joins {
			add(j.FactFK)
		}
		for _, a := range q.Aggs {
			if a.Kind != AggCount {
				add(a.A)
			}
			if a.Kind == AggSumMul || a.Kind == AggSumSub {
				add(a.B)
			}
		}
		for _, g := range q.GroupBy {
			if g.Table == q.Fact {
				add(g.Column)
			}
		}
	}
	return cols
}

// String renders a one-line summary of the fused node.
func (s *SharedScan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shared-scan(%s, %d members, %d cols): ",
		s.Fact, len(s.Members), len(s.SharedColumns()))
	for i, m := range s.Members {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(m.Shape().String())
	}
	return b.String()
}
