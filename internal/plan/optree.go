package plan

// optree.go is the explicit physical-operator pipeline behind per-operator
// hybrid placement: a Physical plan compiles into a linear operator tree
// (DimBuild* -> Scan -> Filter -> JoinProbe* -> Aggregate -> Merge ->
// OrderLimit) whose nodes each carry the device they are placed on. The
// optimizer fills devices and cost annotations; both executors consume the
// same tree, with exec.Placed handling plans whose operators span devices.

import (
	"fmt"
	"strings"
)

// Device identifies the engine an operator is placed on.
type Device int

// Devices.
const (
	DeviceCAPE Device = iota
	DeviceCPU
)

func (d Device) String() string {
	if d == DeviceCAPE {
		return "CAPE"
	}
	return "CPU"
}

// OpKind names a physical-operator pipeline stage.
type OpKind int

// Operator kinds, in the order they appear in a placed pipeline.
const (
	// OpDimBuild filters one dimension and compacts its qualifying keys and
	// attributes (CAPE: Figure 4 values arrays; CPU: selection scans feeding
	// hash-table builds).
	OpDimBuild OpKind = iota
	// OpScan streams the fact partition's columns into the executing
	// device (CSB loads on CAPE, cache-line streams on the CPU).
	OpScan
	// OpFilter evaluates the fact selection predicates into a row mask.
	OpFilter
	// OpJoinProbe probes one join edge (right-deep: the filtered dimension
	// probes the resident fact partition; left-deep: surviving rows probe
	// the dimension).
	OpJoinProbe
	// OpAggregate folds surviving rows into the group accumulator
	// (Algorithm 2 on CAPE, hash aggregation on the CPU).
	OpAggregate
	// OpMerge combines partial group accumulators (morsel-parallel lanes,
	// and the device boundary when aggregation runs off the fact device).
	OpMerge
	// OpOrderLimit applies the final ORDER BY / LIMIT on the result
	// relation (CP-side on either device).
	OpOrderLimit
)

// PipelineBreaker reports whether an operator must observe its entire
// input before emitting anything: DimBuild (the hash table / values array
// is consulted by every probe), Aggregate and Merge (a group's value is
// unknown until the last contributing row), and OrderLimit (ordering is a
// property of the whole relation). A streaming executor may not release a
// breaker's output batch-by-batch; everything downstream of the fact scan
// up to the first breaker streams.
func (k OpKind) PipelineBreaker() bool {
	switch k {
	case OpDimBuild, OpAggregate, OpMerge, OpOrderLimit:
		return true
	}
	return false
}

// Streams reports the complement of PipelineBreaker: the operator maps
// each input batch to an output batch independently (Scan, Filter,
// JoinProbe), so a streaming executor can pipeline MAXVL-sized batches
// straight through it.
func (k OpKind) Streams() bool { return !k.PipelineBreaker() }

func (k OpKind) String() string {
	switch k {
	case OpDimBuild:
		return "dimbuild"
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpJoinProbe:
		return "joinprobe"
	case OpAggregate:
		return "aggregate"
	case OpMerge:
		return "merge"
	case OpOrderLimit:
		return "orderlimit"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// PlacedOp is one node of a placed operator pipeline.
type PlacedOp struct {
	Kind OpKind
	// Dim names the dimension for OpDimBuild / OpJoinProbe nodes.
	Dim string
	// Device is the engine this operator executes on.
	Device Device
	// EstRows is the optimizer's output-cardinality estimate (input rows
	// for OpScan/OpFilter; qualifying dimension rows for dimension nodes;
	// groups for aggregation nodes). Zero when not annotated.
	EstRows int64
	// EstCycles is the optimizer's per-operator cycle estimate on Device.
	// Zero when not annotated.
	EstCycles int64
	// XferCycles is the estimated device-transfer cost paid entering this
	// operator from a producer placed on the other device (0 when the
	// pipeline stays put). Under a streaming cost model this is the
	// overlapped (elapsed) transfer term, not the raw wire cycles.
	XferCycles int64
	// EstSource records where the cardinality behind EstRows/EstCycles came
	// from: "assumed" (fixed constants / unknown columns), "histogram"
	// (collected statistics), or "observed" (measured mid-query by the
	// adaptive checkpoint). Empty when the op is unannotated.
	EstSource string
	// Breaker marks a pipeline breaker: the operator consumes its whole
	// input before producing output, so a streaming executor materializes
	// at this node. Set by Compile from the kind's PipelineBreaker rule.
	Breaker bool
}

// PlacedPlan is a Physical plan with its operator pipeline placed onto
// devices. The fused fact stage (Scan, Filter, every JoinProbe) shares one
// device — CAPE fusion keeps row masks CSB-resident between those
// operators, so splitting inside the stage would materialize every mask
// through memory — and the aggregation tail (Aggregate, Merge, OrderLimit)
// shares another; each DimBuild may sit on either side, paying a transfer
// when it feeds a fact stage on the other device.
type PlacedPlan struct {
	Phys *Physical
	Ops  []PlacedOp
	// AltEstCycles is the estimated total of the best placement the search
	// rejected (the cheapest candidate with a different fact/agg device
	// assignment). Zero when the pipeline was not placed by a search.
	// Comparing it against measured cycles tells whether the placement
	// decision would have flipped under perfect information.
	AltEstCycles int64
	// AltFeasible distinguishes "no alternative exists" from "alternative
	// costs zero": false when the search space collapsed to a single
	// (fact, agg) device assignment (grouped SUM(a*b) force-places the tail
	// on the CPU) or the pipeline was never placed by a search. Would-flip
	// telemetry must not count plans whose placement could not have gone the
	// other way.
	AltFeasible bool
	// EstSurvivors is the estimated fact-stage survivor count (rows reaching
	// the aggregation tail) the placement was priced with; the adaptive
	// checkpoint compares it against the observed count. Zero when
	// unannotated.
	EstSurvivors int64
	// EstGroups is the estimated result-group cardinality.
	EstGroups int64
}

// Compile builds the unplaced operator pipeline for a physical plan, every
// node on dev. Ops follow execution order: one DimBuild per join edge (plan
// order), Scan, Filter (when the query has fact predicates), one JoinProbe
// per edge, Aggregate, Merge, and OrderLimit (when the query orders or
// limits).
func Compile(p *Physical, dev Device) *PlacedPlan {
	q := p.Query
	pp := &PlacedPlan{Phys: p}
	for _, e := range p.Joins {
		pp.Ops = append(pp.Ops, PlacedOp{Kind: OpDimBuild, Dim: e.Dim, Device: dev})
	}
	pp.Ops = append(pp.Ops, PlacedOp{Kind: OpScan, Device: dev})
	if len(q.FactPreds) > 0 {
		pp.Ops = append(pp.Ops, PlacedOp{Kind: OpFilter, Device: dev})
	}
	for _, e := range p.Joins {
		pp.Ops = append(pp.Ops, PlacedOp{Kind: OpJoinProbe, Dim: e.Dim, Device: dev})
	}
	pp.Ops = append(pp.Ops, PlacedOp{Kind: OpAggregate, Device: dev})
	pp.Ops = append(pp.Ops, PlacedOp{Kind: OpMerge, Device: dev})
	if len(q.OrderBy) > 0 || q.Limit > 0 {
		pp.Ops = append(pp.Ops, PlacedOp{Kind: OpOrderLimit, Device: dev})
	}
	for i := range pp.Ops {
		pp.Ops[i].Breaker = pp.Ops[i].Kind.PipelineBreaker()
	}
	return pp
}

// Place sets the devices of a compiled pipeline: the fused fact stage on
// factDev, the aggregation tail on aggDev, and each DimBuild per dimDev
// (dimensions absent from the map follow factDev).
func (pp *PlacedPlan) Place(factDev, aggDev Device, dimDev map[string]Device) *PlacedPlan {
	for i := range pp.Ops {
		op := &pp.Ops[i]
		switch op.Kind {
		case OpDimBuild:
			if d, ok := dimDev[op.Dim]; ok {
				op.Device = d
			} else {
				op.Device = factDev
			}
		case OpScan, OpFilter, OpJoinProbe:
			op.Device = factDev
		case OpAggregate, OpMerge, OpOrderLimit:
			op.Device = aggDev
		}
	}
	return pp
}

// Validate checks the placement constraints Compile/Place maintain by
// construction: the fused fact stage on one device and the aggregation
// tail on one device.
func (pp *PlacedPlan) Validate() error {
	factSet, aggSet := false, false
	var factDev, aggDev Device
	for _, op := range pp.Ops {
		switch op.Kind {
		case OpScan, OpFilter, OpJoinProbe:
			if factSet && op.Device != factDev {
				return fmt.Errorf("plan: fused fact stage split across devices (%s on %s, want %s)",
					op.Kind, op.Device, factDev)
			}
			factDev, factSet = op.Device, true
		case OpAggregate, OpMerge, OpOrderLimit:
			if aggSet && op.Device != aggDev {
				return fmt.Errorf("plan: aggregation tail split across devices (%s on %s, want %s)",
					op.Kind, op.Device, aggDev)
			}
			aggDev, aggSet = op.Device, true
		}
	}
	return nil
}

// FactDevice returns the device of the fused fact stage.
func (pp *PlacedPlan) FactDevice() Device {
	for _, op := range pp.Ops {
		if op.Kind == OpScan {
			return op.Device
		}
	}
	return DeviceCAPE
}

// AggDevice returns the device of the aggregation tail.
func (pp *PlacedPlan) AggDevice() Device {
	for _, op := range pp.Ops {
		if op.Kind == OpAggregate {
			return op.Device
		}
	}
	return pp.FactDevice()
}

// DimDevice returns the device building a dimension (the fact device for
// unknown names).
func (pp *PlacedPlan) DimDevice(dim string) Device {
	for _, op := range pp.Ops {
		if op.Kind == OpDimBuild && op.Dim == dim {
			return op.Device
		}
	}
	return pp.FactDevice()
}

// Uniform reports whether every operator sits on one device, and which.
func (pp *PlacedPlan) Uniform() (Device, bool) {
	if len(pp.Ops) == 0 {
		return DeviceCAPE, true
	}
	d := pp.Ops[0].Device
	for _, op := range pp.Ops[1:] {
		if op.Device != d {
			return d, false
		}
	}
	return d, true
}

// Mixed reports whether the placement spans both devices.
func (pp *PlacedPlan) Mixed() bool {
	_, uniform := pp.Uniform()
	return !uniform
}

// EstCycles sums the per-operator cycle and transfer estimates (zero when
// the pipeline is unannotated).
func (pp *PlacedPlan) EstCycles() int64 {
	var n int64
	for _, op := range pp.Ops {
		n += op.EstCycles + op.XferCycles
	}
	return n
}

// OpEstimate is one annotated operator projected onto the breakdown-row
// vocabulary both executors emit, so predictions can sit next to measured
// cycles in an EXPLAIN ANALYZE table.
type OpEstimate struct {
	// Row is the breakdown row name ("prep:date", "filter", "join:part",
	// "xfer:aggregate", ...).
	Row string
	// Kind is the dominant operator kind behind the row.
	Kind OpKind
	// Device is the engine the row is placed on.
	Device Device
	// Cycles is the predicted cycle count; Rows the predicted cardinality.
	Cycles int64
	Rows   int64
	// EstSource is the provenance of the estimate (assumed|histogram|
	// observed); empty when the pipeline was annotated before sources were
	// tracked.
	EstSource string
}

// Estimates projects the annotated pipeline onto breakdown rows: one
// "prep:<dim>" per dimension build (plus "xfer:<dim>" when it crosses to
// the fact device), Scan and Filter folded into the "filter" row both
// executors charge streaming against, one "join:<dim>" per probe,
// "xfer:aggregate" for a tail crossing, and Aggregate/Merge/OrderLimit
// folded into "aggregate". Rows the executors emit without a model price
// ("overhead", per-tile sweeps) have no estimate. Estimates that round to
// zero are reported as true zeros — flooring them at 1 used to make the
// symmetric-ratio divergence telemetry print finite-but-meaningless ratios
// for zero-cardinality operators; consumers must guard zero denominators
// instead (an estimated row is one with a non-empty EstSource, not one
// with Cycles > 0).
func (pp *PlacedPlan) Estimates() []OpEstimate {
	var out []OpEstimate
	var filter, agg OpEstimate
	for _, op := range pp.Ops {
		switch op.Kind {
		case OpDimBuild:
			out = append(out, OpEstimate{
				Row: "prep:" + op.Dim, Kind: OpDimBuild, Device: op.Device,
				Cycles: op.EstCycles, Rows: op.EstRows, EstSource: op.EstSource,
			})
			if op.XferCycles > 0 {
				out = append(out, OpEstimate{
					Row: "xfer:" + op.Dim, Kind: OpDimBuild, Device: op.Device,
					Cycles: op.XferCycles, Rows: op.EstRows, EstSource: op.EstSource,
				})
			}
		case OpScan:
			filter = OpEstimate{Row: "filter", Kind: OpFilter, Device: op.Device,
				Cycles: filter.Cycles + op.EstCycles, Rows: op.EstRows,
				EstSource: op.EstSource}
		case OpFilter:
			filter.Cycles += op.EstCycles
			filter.Device = op.Device
			if op.EstSource != "" {
				filter.EstSource = op.EstSource
			}
		case OpJoinProbe:
			out = append(out, OpEstimate{
				Row: "join:" + op.Dim, Kind: OpJoinProbe, Device: op.Device,
				Cycles: op.EstCycles, Rows: op.EstRows, EstSource: op.EstSource,
			})
		case OpAggregate:
			agg.Row, agg.Kind, agg.Device = "aggregate", OpAggregate, op.Device
			agg.Cycles += op.EstCycles
			agg.Rows = op.EstRows
			agg.EstSource = op.EstSource
			if op.XferCycles > 0 {
				out = append(out, OpEstimate{
					Row: "xfer:aggregate", Kind: OpAggregate, Device: op.Device,
					Cycles: op.XferCycles, Rows: op.EstRows, EstSource: op.EstSource,
				})
			}
		case OpMerge, OpOrderLimit:
			agg.Cycles += op.EstCycles
		}
	}
	if filter.Row != "" {
		out = append(out, filter)
	}
	if agg.Row != "" {
		out = append(out, agg)
	}
	return out
}

// EstimateMap returns the Estimates keyed by breakdown row name (the form
// telemetry.Breakdown.ApplyEstimates consumes). Zero-cycle estimates are
// dropped — legacy consumers treat Cycles > 0 as "has estimate"; use
// EstimateCells to see true zeros and sources.
func (pp *PlacedPlan) EstimateMap() map[string]int64 {
	ests := pp.Estimates()
	out := make(map[string]int64, len(ests))
	for _, e := range ests {
		if e.Cycles > 0 {
			out[e.Row] = e.Cycles
		}
	}
	return out
}

// EstCell is one breakdown row's estimate with provenance — the form
// telemetry.Breakdown.ApplyEstimateCells consumes. Unlike EstimateMap,
// a zero-cycle cell survives: "estimated at zero" and "not estimated" are
// different facts, and the divergence telemetry needs to tell them apart.
type EstCell struct {
	Cycles int64
	Rows   int64
	Source string
}

// EstimateCells returns the Estimates keyed by breakdown row name,
// preserving true-zero estimates and per-row sources.
func (pp *PlacedPlan) EstimateCells() map[string]EstCell {
	ests := pp.Estimates()
	out := make(map[string]EstCell, len(ests))
	for _, e := range ests {
		src := e.EstSource
		if src == "" {
			src = "assumed"
		}
		out[e.Row] = EstCell{Cycles: e.Cycles, Rows: e.Rows, Source: src}
	}
	return out
}

// Crossings counts the device transfers the placement pays: one per
// DimBuild feeding a fact stage on the other device, plus one when the
// aggregation tail leaves the fact device.
func (pp *PlacedPlan) Crossings() int {
	fact, agg := pp.FactDevice(), pp.AggDevice()
	n := 0
	for _, op := range pp.Ops {
		if op.Kind == OpDimBuild && op.Device != fact {
			n++
		}
	}
	if agg != fact {
		n++
	}
	return n
}

// String renders the placed operator tree (the \explain surface and the
// golden-test snapshot form): one aligned line per operator with its
// device, probe direction, and cost annotations.
func (pp *PlacedPlan) String() string {
	var b strings.Builder
	kind := "uniform"
	if pp.Mixed() {
		kind = "mixed"
	}
	fmt.Fprintf(&b, "placed plan (%s, %s shape, est %d cycles):\n",
		kind, pp.Phys.Shape(), pp.EstCycles())
	for _, op := range pp.Ops {
		name := op.Kind.String()
		switch op.Kind {
		case OpDimBuild, OpJoinProbe:
			name += "[" + op.Dim + "]"
		case OpScan:
			name += "[" + pp.Phys.Query.Fact + "]"
		}
		fmt.Fprintf(&b, "  %-22s %-4s", name, op.Device)
		if op.Kind == OpJoinProbe {
			dir := "dim-probes-fact"
			for i, e := range pp.Phys.Joins {
				if e.Dim == op.Dim && i >= pp.Phys.Switch {
					dir = "rows-probe-dim"
				}
			}
			fmt.Fprintf(&b, " %-16s", dir)
		} else {
			fmt.Fprintf(&b, " %-16s", "")
		}
		if op.EstRows > 0 || op.EstCycles > 0 {
			fmt.Fprintf(&b, " rows~%-10d cycles~%d", op.EstRows, op.EstCycles)
		}
		if op.XferCycles > 0 {
			fmt.Fprintf(&b, " +xfer~%d", op.XferCycles)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}
