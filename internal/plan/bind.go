package plan

import (
	"fmt"

	"castle/internal/sql"
	"castle/internal/storage"
)

// Bind resolves a parsed statement against a database schema into a star
// Query. The fact relation is the largest FROM relation; every join
// predicate must connect the fact to a dimension (star schemas have no
// dimension-to-dimension joins).
func Bind(stmt *sql.SelectStmt, db *storage.Database) (*Query, error) {
	if len(stmt.Tables) == 0 {
		return nil, fmt.Errorf("plan: no FROM tables")
	}
	tables := make([]*storage.Table, 0, len(stmt.Tables))
	for _, ref := range stmt.Tables {
		t := db.Table(ref.Name)
		if t == nil {
			return nil, fmt.Errorf("plan: unknown table %q", ref.Name)
		}
		tables = append(tables, t)
	}
	fact := tables[0]
	for _, t := range tables[1:] {
		if t.Rows() > fact.Rows() {
			fact = t
		}
	}

	q := &Query{Fact: fact.Name, DimPreds: make(map[string][]Predicate)}
	b := &binder{db: db, tables: tables, fact: fact, q: q}

	if stmt.Where != nil {
		if err := b.walkConjuncts(stmt.Where); err != nil {
			return nil, err
		}
	}

	for _, g := range stmt.GroupBy {
		ref, err := b.resolve(g)
		if err != nil {
			return nil, err
		}
		q.GroupBy = append(q.GroupBy, ref)
		if ref.Table != q.Fact {
			j := q.JoinFor(ref.Table)
			if j == nil {
				return nil, fmt.Errorf("plan: GROUP BY %s references unjoined table %s", g, ref.Table)
			}
			j.addAttr(ref.Column)
		}
	}

	for _, item := range stmt.Items {
		switch item.Agg {
		case "":
			col, ok := item.Expr.(sql.ColRef)
			if !ok {
				return nil, fmt.Errorf("plan: non-aggregate select item %s must be a column", item.Expr)
			}
			ref, err := b.resolve(col.Name)
			if err != nil {
				return nil, err
			}
			if !containsRef(q.GroupBy, ref) {
				return nil, fmt.Errorf("plan: select column %s is not in GROUP BY", col.Name)
			}
		case "SUM":
			agg, err := b.bindSum(item)
			if err != nil {
				return nil, err
			}
			q.Aggs = append(q.Aggs, agg)
		case "COUNT":
			if item.Distinct {
				col, ok := item.Expr.(sql.ColRef)
				if !ok {
					return nil, fmt.Errorf("plan: COUNT(DISTINCT ...) argument must be a column")
				}
				ref, err := b.resolve(col.Name)
				if err != nil {
					return nil, err
				}
				if ref.Table != q.Fact {
					return nil, fmt.Errorf("plan: COUNT(DISTINCT) over non-fact column %s", col.Name)
				}
				q.Aggs = append(q.Aggs, AggExpr{Kind: AggCountDistinct, A: ref.Column, Alias: item.Alias})
				continue
			}
			q.Aggs = append(q.Aggs, AggExpr{Kind: AggCount, Alias: item.Alias})
		case "MIN", "MAX", "AVG":
			agg, err := b.bindSimpleAgg(item)
			if err != nil {
				return nil, err
			}
			q.Aggs = append(q.Aggs, agg)
		default:
			return nil, fmt.Errorf("plan: unsupported aggregate %s", item.Agg)
		}
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("plan: analytic queries must have at least one aggregate")
	}

	for _, o := range stmt.OrderBy {
		term, err := b.resolveOrderTerm(o)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, term)
	}
	q.Limit = stmt.Limit
	return q, nil
}

// resolveOrderTerm maps an ORDER BY name to a group-by column or an
// aggregate alias.
func (b *binder) resolveOrderTerm(o sql.OrderItem) (OrderTerm, error) {
	if ref, err := b.resolve(o.Col); err == nil {
		for i, g := range b.q.GroupBy {
			if g == ref {
				return OrderTerm{KeyIdx: i, AggIdx: -1, Desc: o.Desc}, nil
			}
		}
	}
	for i, a := range b.q.Aggs {
		if a.Alias == o.Col {
			return OrderTerm{KeyIdx: -1, AggIdx: i, Desc: o.Desc}, nil
		}
	}
	return OrderTerm{}, fmt.Errorf("plan: ORDER BY %s is neither a GROUP BY column nor an aggregate alias", o.Col)
}

func (j *JoinEdge) addAttr(col string) {
	for _, a := range j.NeedAttrs {
		if a == col {
			return
		}
	}
	j.NeedAttrs = append(j.NeedAttrs, col)
}

func containsRef(refs []ColRef, r ColRef) bool {
	for _, x := range refs {
		if x == r {
			return true
		}
	}
	return false
}

type binder struct {
	db     *storage.Database
	tables []*storage.Table
	fact   *storage.Table
	q      *Query
}

// resolve finds the FROM relation owning an unqualified column name.
func (b *binder) resolve(col string) (ColRef, error) {
	var found ColRef
	n := 0
	for _, t := range b.tables {
		if t.Column(col) != nil {
			found = ColRef{Table: t.Name, Column: col}
			n++
		}
	}
	switch n {
	case 0:
		return ColRef{}, fmt.Errorf("plan: column %q not found in FROM tables", col)
	case 1:
		return found, nil
	default:
		return ColRef{}, fmt.Errorf("plan: column %q is ambiguous", col)
	}
}

func (b *binder) column(ref ColRef) *storage.Column {
	return b.db.MustTable(ref.Table).MustColumn(ref.Column)
}

// walkConjuncts flattens the WHERE AND-chain and binds each conjunct.
func (b *binder) walkConjuncts(e sql.Expr) error {
	if and, ok := e.(sql.BinaryExpr); ok && and.Op == "AND" {
		if err := b.walkConjuncts(and.L); err != nil {
			return err
		}
		return b.walkConjuncts(and.R)
	}
	return b.bindConjunct(e)
}

func (b *binder) bindConjunct(e sql.Expr) error {
	switch x := e.(type) {
	case sql.BinaryExpr:
		switch x.Op {
		case "OR":
			return b.bindOrGroup(x)
		case "=", "<>", "<", "<=", ">", ">=":
			return b.bindComparison(x)
		default:
			return fmt.Errorf("plan: unsupported WHERE operator %q", x.Op)
		}
	case sql.BetweenExpr:
		return b.bindBetween(x)
	case sql.InExpr:
		return b.bindIn(x)
	default:
		return fmt.Errorf("plan: unsupported WHERE clause %s", e)
	}
}

func (b *binder) bindComparison(x sql.BinaryExpr) error {
	lc, lIsCol := x.L.(sql.ColRef)
	rc, rIsCol := x.R.(sql.ColRef)
	switch {
	case lIsCol && rIsCol:
		if x.Op != "=" {
			return fmt.Errorf("plan: join predicates must be equalities, got %s", x)
		}
		return b.bindJoin(lc.Name, rc.Name)
	case lIsCol:
		return b.bindColLiteral(lc.Name, x.Op, x.R)
	case rIsCol:
		return b.bindColLiteral(rc.Name, flipOp(x.Op), x.L)
	default:
		return fmt.Errorf("plan: predicate %s references no column", x)
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

func (b *binder) bindJoin(colA, colB string) error {
	ra, err := b.resolve(colA)
	if err != nil {
		return err
	}
	rb, err := b.resolve(colB)
	if err != nil {
		return err
	}
	var fk, dk ColRef
	switch {
	case ra.Table == b.q.Fact && rb.Table != b.q.Fact:
		fk, dk = ra, rb
	case rb.Table == b.q.Fact && ra.Table != b.q.Fact:
		fk, dk = rb, ra
	default:
		return fmt.Errorf("plan: join %s = %s does not connect fact and dimension (star schema required)", colA, colB)
	}
	if j := b.q.JoinFor(dk.Table); j != nil {
		return fmt.Errorf("plan: dimension %s joined twice", dk.Table)
	}
	b.q.Joins = append(b.q.Joins, JoinEdge{Dim: dk.Table, FactFK: fk.Column, DimKey: dk.Column})
	return nil
}

// encodeLiteral converts a SQL literal to a column's encoded 32-bit domain.
// ok is false when a string value is absent from the dictionary.
func (b *binder) encodeLiteral(col *storage.Column, lit sql.Expr) (uint32, bool, error) {
	switch v := lit.(type) {
	case sql.IntLit:
		if v.V < 0 || v.V > int64(^uint32(0)) {
			return 0, false, fmt.Errorf("plan: literal %d out of 32-bit range", v.V)
		}
		return uint32(v.V), true, nil
	case sql.StrLit:
		if col.Dict == nil {
			return 0, false, fmt.Errorf("plan: string literal %q compared with non-string column %s", v.V, col.Name)
		}
		c, ok := col.Dict.Encode(v.V)
		return c, ok, nil
	default:
		return 0, false, fmt.Errorf("plan: unsupported literal %s", lit)
	}
}

func (b *binder) addPred(ref ColRef, p Predicate) {
	p.Table, p.Column = ref.Table, ref.Column
	if ref.Table == b.q.Fact {
		b.q.FactPreds = append(b.q.FactPreds, p)
	} else {
		b.q.DimPreds[ref.Table] = append(b.q.DimPreds[ref.Table], p)
	}
}

func (b *binder) bindColLiteral(col, op string, lit sql.Expr) error {
	ref, err := b.resolve(col)
	if err != nil {
		return err
	}
	c := b.column(ref)
	v, ok, err := b.encodeLiteral(c, lit)
	if err != nil {
		return err
	}
	if !ok {
		// Unknown dictionary value: equality can never match; inequality
		// always matches (drop); ordering against an unseen string is out
		// of the benchmark's scope.
		switch op {
		case "=":
			b.addPred(ref, Predicate{Op: PredEQ, Never: true})
			return nil
		case "<>":
			return nil
		default:
			return fmt.Errorf("plan: ordering comparison with unknown string %s", lit)
		}
	}
	var p Predicate
	switch op {
	case "=":
		p = Predicate{Op: PredEQ, Value: v}
	case "<>":
		p = Predicate{Op: PredNE, Value: v}
	case "<":
		p = Predicate{Op: PredLT, Value: v}
	case "<=":
		p = Predicate{Op: PredLE, Value: v}
	case ">":
		p = Predicate{Op: PredGT, Value: v}
	case ">=":
		p = Predicate{Op: PredGE, Value: v}
	default:
		return fmt.Errorf("plan: unsupported comparison %q", op)
	}
	b.addPred(ref, p)
	return nil
}

func (b *binder) bindBetween(x sql.BetweenExpr) error {
	col, ok := x.Operand.(sql.ColRef)
	if !ok {
		return fmt.Errorf("plan: BETWEEN operand must be a column, got %s", x.Operand)
	}
	ref, err := b.resolve(col.Name)
	if err != nil {
		return err
	}
	c := b.column(ref)
	// String ranges map to code ranges via the sorted dictionary.
	loS, loStr := x.Lo.(sql.StrLit)
	hiS, hiStr := x.Hi.(sql.StrLit)
	if loStr && hiStr {
		if c.Dict == nil {
			return fmt.Errorf("plan: string BETWEEN on non-string column %s", col.Name)
		}
		lo, hi, any := c.Dict.Bounds(loS.V, hiS.V)
		if !any {
			b.addPred(ref, Predicate{Op: PredBetween, Never: true})
			return nil
		}
		b.addPred(ref, Predicate{Op: PredBetween, Lo: lo, Hi: hi})
		return nil
	}
	lo, okLo, err := b.encodeLiteral(c, x.Lo)
	if err != nil {
		return err
	}
	hi, okHi, err := b.encodeLiteral(c, x.Hi)
	if err != nil {
		return err
	}
	if !okLo || !okHi {
		return fmt.Errorf("plan: BETWEEN bound not found in dictionary")
	}
	b.addPred(ref, Predicate{Op: PredBetween, Lo: lo, Hi: hi})
	return nil
}

func (b *binder) bindIn(x sql.InExpr) error {
	col, ok := x.Operand.(sql.ColRef)
	if !ok {
		return fmt.Errorf("plan: IN operand must be a column, got %s", x.Operand)
	}
	ref, err := b.resolve(col.Name)
	if err != nil {
		return err
	}
	c := b.column(ref)
	var vals []uint32
	for _, lit := range x.List {
		v, ok, err := b.encodeLiteral(c, lit)
		if err != nil {
			return err
		}
		if ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		b.addPred(ref, Predicate{Op: PredIn, Never: true})
		return nil
	}
	b.addPred(ref, Predicate{Op: PredIn, Values: vals})
	return nil
}

// bindOrGroup folds a disjunction of equalities on one column into PredIn.
func (b *binder) bindOrGroup(x sql.BinaryExpr) error {
	var terms []sql.Expr
	var flatten func(e sql.Expr)
	flatten = func(e sql.Expr) {
		if or, ok := e.(sql.BinaryExpr); ok && or.Op == "OR" {
			flatten(or.L)
			flatten(or.R)
			return
		}
		terms = append(terms, e)
	}
	flatten(x)

	colName := ""
	var lits []sql.Expr
	for _, t := range terms {
		eq, ok := t.(sql.BinaryExpr)
		if !ok || eq.Op != "=" {
			return fmt.Errorf("plan: OR groups must be disjunctions of equalities, got %s", t)
		}
		c, cok := eq.L.(sql.ColRef)
		lit := eq.R
		if !cok {
			c, cok = eq.R.(sql.ColRef)
			lit = eq.L
		}
		if !cok {
			return fmt.Errorf("plan: OR term %s has no column", t)
		}
		if colName == "" {
			colName = c.Name
		} else if colName != c.Name {
			return fmt.Errorf("plan: OR group mixes columns %s and %s", colName, c.Name)
		}
		lits = append(lits, lit)
	}
	return b.bindIn(sql.InExpr{Operand: sql.ColRef{Name: colName}, List: lits})
}

// bindSimpleAgg binds MIN/MAX/AVG over a single fact column.
func (b *binder) bindSimpleAgg(item sql.SelectItem) (AggExpr, error) {
	col, ok := item.Expr.(sql.ColRef)
	if !ok {
		return AggExpr{}, fmt.Errorf("plan: %s argument must be a column, got %s", item.Agg, item.Expr)
	}
	ref, err := b.resolve(col.Name)
	if err != nil {
		return AggExpr{}, err
	}
	if ref.Table != b.q.Fact {
		return AggExpr{}, fmt.Errorf("plan: aggregate over non-fact column %s", col.Name)
	}
	kind := map[string]AggKind{"MIN": AggMin, "MAX": AggMax, "AVG": AggAvg}[item.Agg]
	return AggExpr{Kind: kind, A: ref.Column, Alias: item.Alias}, nil
}

func (b *binder) bindSum(item sql.SelectItem) (AggExpr, error) {
	requireFactCol := func(e sql.Expr) (string, error) {
		c, ok := e.(sql.ColRef)
		if !ok {
			return "", fmt.Errorf("plan: aggregate term %s must be a column", e)
		}
		ref, err := b.resolve(c.Name)
		if err != nil {
			return "", err
		}
		if ref.Table != b.q.Fact {
			return "", fmt.Errorf("plan: aggregate over non-fact column %s", c.Name)
		}
		return ref.Column, nil
	}
	switch e := item.Expr.(type) {
	case sql.ColRef:
		a, err := requireFactCol(e)
		if err != nil {
			return AggExpr{}, err
		}
		return AggExpr{Kind: AggSumCol, A: a, Alias: item.Alias}, nil
	case sql.BinaryExpr:
		a, err := requireFactCol(e.L)
		if err != nil {
			return AggExpr{}, err
		}
		bcol, err := requireFactCol(e.R)
		if err != nil {
			return AggExpr{}, err
		}
		switch e.Op {
		case "*":
			return AggExpr{Kind: AggSumMul, A: a, B: bcol, Alias: item.Alias}, nil
		case "-":
			return AggExpr{Kind: AggSumSub, A: a, B: bcol, Alias: item.Alias}, nil
		default:
			return AggExpr{}, fmt.Errorf("plan: unsupported aggregate arithmetic %q", e.Op)
		}
	default:
		return AggExpr{}, fmt.Errorf("plan: unsupported aggregate expression %s", item.Expr)
	}
}
