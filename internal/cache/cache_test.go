package cache

import (
	"testing"
	"testing/quick"
)

func TestFitsInL1(t *testing.T) {
	h := Skylake()
	if got := h.ExpectedAccessCycles(16 << 10); got != h.Levels[0].LatencyCycles {
		t.Fatalf("L1-resident access = %.1f cycles, want %.1f", got, h.Levels[0].LatencyCycles)
	}
}

func TestFitsInL2(t *testing.T) {
	h := Skylake()
	got := h.ExpectedAccessCycles(512 << 10)
	// Mostly L2 latency with an L1-hit fraction.
	if got <= h.Levels[0].LatencyCycles || got >= h.Levels[1].LatencyCycles {
		t.Fatalf("512KB working set = %.1f cycles, want between L1 and L2 latency", got)
	}
}

func TestHugeWorkingSetApproachesDRAM(t *testing.T) {
	h := Skylake()
	got := h.ExpectedAccessCycles(1 << 33) // 8 GB
	wantMin := h.DRAMLatencyCycles / h.MLP * 0.95
	if got < wantMin {
		t.Fatalf("8GB working set = %.1f cycles, want >= %.1f", got, wantMin)
	}
}

func TestMonotonicInWorkingSet(t *testing.T) {
	h := Skylake()
	prev := 0.0
	for ws := int64(1 << 10); ws <= 1<<34; ws <<= 1 {
		c := h.ExpectedAccessCycles(ws)
		if c < prev {
			t.Fatalf("cost decreased at ws=%d: %.2f < %.2f", ws, c, prev)
		}
		prev = c
	}
}

func TestZeroWorkingSet(t *testing.T) {
	h := Skylake()
	if h.ExpectedAccessCycles(0) != 0 || h.DRAMMissFraction(0) != 0 {
		t.Fatal("zero working set should cost nothing")
	}
}

func TestDRAMMissFraction(t *testing.T) {
	h := Skylake()
	if f := h.DRAMMissFraction(1 << 20); f != 0 {
		t.Fatalf("L3-resident working set miss fraction = %f, want 0", f)
	}
	f := h.DRAMMissFraction(11264 << 10) // 2x LLC
	if f < 0.49 || f > 0.51 {
		t.Fatalf("2xLLC miss fraction = %f, want ~0.5", f)
	}
}

// Property: expected cost is bounded by [L1 latency, DRAM latency] for any
// positive working set.
func TestQuickCostBounds(t *testing.T) {
	h := Skylake()
	f := func(wsRaw uint32) bool {
		ws := int64(wsRaw) + 1
		c := h.ExpectedAccessCycles(ws)
		return c >= h.Levels[0].LatencyCycles && c <= h.DRAMLatencyCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if Skylake().String() == "" {
		t.Fatal("empty hierarchy string")
	}
}
