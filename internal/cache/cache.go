// Package cache provides an analytic cache-hierarchy timing model for the
// baseline out-of-order CPU (Table 2). Rather than simulating individual
// accesses, the model computes the expected cost of an access pattern from
// its working-set size: accesses to a working set larger than a level spill
// to the next level with probability proportional to the capacity ratio.
//
// This captures the effects the paper's evaluation depends on — the hash
// aggregation baseline collapsing once its table exceeds the LLC (Figure 12)
// and hash join probe costs growing with dimension size (Figure 11) —
// without an event-driven simulator.
package cache

import "fmt"

// Level describes one cache level.
type Level struct {
	Name          string
	CapacityBytes int64
	LatencyCycles float64
}

// Hierarchy is an inclusive cache hierarchy backed by DRAM.
type Hierarchy struct {
	Levels []Level
	// DRAMLatencyCycles is the full load-to-use latency of a DRAM access.
	DRAMLatencyCycles float64
	// MLP is the memory-level parallelism an out-of-order core extracts on
	// independent misses: effective miss cost is latency/MLP.
	MLP float64
	// LineBytes is the transfer granularity.
	LineBytes int
}

// Skylake returns the baseline hierarchy of Table 2 with *effective*
// latencies: the architectural numbers are 2/14/50 cycles (Table 2), but an
// 8-issue out-of-order core overlaps much of each hit's latency with
// independent work, so the model charges the observable per-access cost of
// an optimized kernel (1/10/35 cycles, DRAM 180 behind an MLP of 4, kept above the LLC latency so cost stays monotone in working-set size).
func Skylake() Hierarchy {
	return Hierarchy{
		Levels: []Level{
			{Name: "L1", CapacityBytes: 32 << 10, LatencyCycles: 1},
			{Name: "L2", CapacityBytes: 1 << 20, LatencyCycles: 10},
			{Name: "L3", CapacityBytes: 5632 << 10, LatencyCycles: 35},
		},
		DRAMLatencyCycles: 180,
		MLP:               4,
		LineBytes:         64,
	}
}

// ExpectedAccessCycles returns the expected latency of one access with
// random locality over a working set of the given size. A working set that
// fits in a level is served at that level's latency; a larger one is served
// at each level with probability capacity/workingSet, and from DRAM (at
// latency/MLP, since an OoO core overlaps independent misses) otherwise.
func (h Hierarchy) ExpectedAccessCycles(workingSetBytes int64) float64 {
	if workingSetBytes <= 0 {
		return 0
	}
	ws := float64(workingSetBytes)
	cost := 0.0
	covered := 0.0 // probability the access was already served
	for _, lv := range h.Levels {
		pFit := float64(lv.CapacityBytes) / ws
		if pFit > 1 {
			pFit = 1
		}
		pHere := pFit - covered
		if pHere <= 0 {
			continue
		}
		cost += pHere * lv.LatencyCycles
		covered = pFit
		if covered >= 1 {
			return cost
		}
	}
	cost += (1 - covered) * h.DRAMLatencyCycles / h.MLP
	return cost
}

// DRAMMissFraction returns the fraction of random accesses over the working
// set that miss all cache levels and reach DRAM (used for traffic
// accounting).
func (h Hierarchy) DRAMMissFraction(workingSetBytes int64) float64 {
	if workingSetBytes <= 0 {
		return 0
	}
	llc := h.Levels[len(h.Levels)-1].CapacityBytes
	if workingSetBytes <= llc {
		return 0
	}
	return 1 - float64(llc)/float64(workingSetBytes)
}

// String describes the hierarchy.
func (h Hierarchy) String() string {
	s := ""
	for i, lv := range h.Levels {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %dKB (%.0fcy)", lv.Name, lv.CapacityBytes>>10, lv.LatencyCycles)
	}
	return s + fmt.Sprintf(", DRAM %.0fcy (MLP %.0f)", h.DRAMLatencyCycles, h.MLP)
}
