package ssb

// Query is one SSB benchmark query.
type Query struct {
	// Num is the paper's numbering (1..13).
	Num int
	// Flight is the conventional SSB name (Q1.1..Q4.3).
	Flight string
	// SQL is the query text (final ORDER BY omitted per §4.1).
	SQL string
	// JoinCount is the number of dimension joins (queries 1-3 have one
	// join; 4-13 have two to four, §4.2).
	JoinCount int
}

// Queries returns the thirteen SSB queries in the paper's order.
func Queries() []Query {
	return []Query{
		{1, "Q1.1", `
			SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, date
			WHERE lo_orderdate = d_datekey
			  AND d_year = 1993
			  AND lo_discount BETWEEN 1 AND 3
			  AND lo_quantity < 25`, 1},
		{2, "Q1.2", `
			SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, date
			WHERE lo_orderdate = d_datekey
			  AND d_yearmonthnum = 199401
			  AND lo_discount BETWEEN 4 AND 6
			  AND lo_quantity BETWEEN 26 AND 35`, 1},
		{3, "Q1.3", `
			SELECT SUM(lo_extendedprice * lo_discount) AS revenue
			FROM lineorder, date
			WHERE lo_orderdate = d_datekey
			  AND d_weeknuminyear = 6 AND d_year = 1994
			  AND lo_discount BETWEEN 5 AND 7
			  AND lo_quantity BETWEEN 26 AND 35`, 1},
		{4, "Q2.1", `
			SELECT SUM(lo_revenue), d_year, p_brand1
			FROM lineorder, date, part, supplier
			WHERE lo_orderdate = d_datekey
			  AND lo_partkey = p_partkey
			  AND lo_suppkey = s_suppkey
			  AND p_category = 'MFGR#12'
			  AND s_region = 'AMERICA'
			GROUP BY d_year, p_brand1`, 3},
		{5, "Q2.2", `
			SELECT SUM(lo_revenue), d_year, p_brand1
			FROM lineorder, date, part, supplier
			WHERE lo_orderdate = d_datekey
			  AND lo_partkey = p_partkey
			  AND lo_suppkey = s_suppkey
			  AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'
			  AND s_region = 'ASIA'
			GROUP BY d_year, p_brand1`, 3},
		{6, "Q2.3", `
			SELECT SUM(lo_revenue), d_year, p_brand1
			FROM lineorder, date, part, supplier
			WHERE lo_orderdate = d_datekey
			  AND lo_partkey = p_partkey
			  AND lo_suppkey = s_suppkey
			  AND p_brand1 = 'MFGR#2339'
			  AND s_region = 'EUROPE'
			GROUP BY d_year, p_brand1`, 3},
		{7, "Q3.1", `
			SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
			FROM customer, lineorder, supplier, date
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_orderdate = d_datekey
			  AND c_region = 'ASIA' AND s_region = 'ASIA'
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_nation, s_nation, d_year`, 3},
		{8, "Q3.2", `
			SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
			FROM customer, lineorder, supplier, date
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_orderdate = d_datekey
			  AND c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_city, s_city, d_year`, 3},
		{9, "Q3.3", `
			SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
			FROM customer, lineorder, supplier, date
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_orderdate = d_datekey
			  AND (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
			  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
			  AND d_year >= 1992 AND d_year <= 1997
			GROUP BY c_city, s_city, d_year`, 3},
		{10, "Q3.4", `
			SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
			FROM customer, lineorder, supplier, date
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_orderdate = d_datekey
			  AND (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
			  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
			  AND d_yearmonth = 'Dec1997'
			GROUP BY c_city, s_city, d_year`, 3},
		{11, "Q4.1", `
			SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
			FROM date, customer, supplier, part, lineorder
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey
			  AND lo_orderdate = d_datekey
			  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
			  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
			GROUP BY d_year, c_nation`, 4},
		{12, "Q4.2", `
			SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit
			FROM date, customer, supplier, part, lineorder
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey
			  AND lo_orderdate = d_datekey
			  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
			  AND (d_year = 1997 OR d_year = 1998)
			  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
			GROUP BY d_year, s_nation, p_category`, 4},
		{13, "Q4.3", `
			SELECT d_year, s_city, p_brand1, SUM(lo_revenue - lo_supplycost) AS profit
			FROM date, customer, supplier, part, lineorder
			WHERE lo_custkey = c_custkey
			  AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey
			  AND lo_orderdate = d_datekey
			  AND s_nation = 'UNITED STATES'
			  AND c_region = 'AMERICA'
			  AND (d_year = 1997 OR d_year = 1998)
			  AND p_category = 'MFGR#14'
			GROUP BY d_year, s_city, p_brand1`, 4},
	}
}
