// Package ssb implements the Star Schema Benchmark (O'Neil et al.): a
// deterministic data generator for the lineorder fact relation and its four
// dimensions (customer, supplier, part, date), plus the thirteen benchmark
// queries in the paper's numbering (queries 1–13 = SSB Q1.1–Q4.3).
//
// Per the paper's methodology (§4.1), string columns used in selection and
// join predicates are dictionary-encoded to 32-bit values at generation
// time (the storage layer does this transparently), and the final ORDER BY
// of each query is omitted.
package ssb

import (
	"fmt"
	"math"

	"castle/internal/storage"
)

// Config parameterises generation.
type Config struct {
	// SF is the scale factor; SF 1 is ~6M lineorder rows (~600 MB raw).
	SF float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Rows per relation at SF 1 (O'Neil et al.).
const (
	lineorderPerSF = 6_000_000
	customerPerSF  = 30_000
	supplierPerSF  = 2_000
	partBase       = 200_000 // 200,000 * (1 + log2(SF))
)

// nations lists the 25 TPC-H nations with their regions.
var nations = []struct {
	name   string
	region string
}{
	{"ALGERIA", "AFRICA"}, {"ARGENTINA", "AMERICA"}, {"BRAZIL", "AMERICA"},
	{"CANADA", "AMERICA"}, {"EGYPT", "MIDDLE EAST"}, {"ETHIOPIA", "AFRICA"},
	{"FRANCE", "EUROPE"}, {"GERMANY", "EUROPE"}, {"INDIA", "ASIA"},
	{"INDONESIA", "ASIA"}, {"IRAN", "MIDDLE EAST"}, {"IRAQ", "MIDDLE EAST"},
	{"JAPAN", "ASIA"}, {"JORDAN", "MIDDLE EAST"}, {"KENYA", "AFRICA"},
	{"MOROCCO", "AFRICA"}, {"MOZAMBIQUE", "AFRICA"}, {"PERU", "AMERICA"},
	{"CHINA", "ASIA"}, {"ROMANIA", "EUROPE"}, {"RUSSIA", "EUROPE"},
	{"SAUDI ARABIA", "MIDDLE EAST"}, {"UNITED KINGDOM", "EUROPE"},
	{"UNITED STATES", "AMERICA"}, {"VIETNAM", "ASIA"},
}

// cityName builds SSB's city names: the nation name padded/truncated to
// nine characters plus a digit 0-9 ("UNITED KI1" is UNITED KIngdom city 1).
func cityName(nation string, k int) string {
	n := nation
	for len(n) < 9 {
		n += " "
	}
	return n[:9] + string(rune('0'+k))
}

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// rng is a small splitmix64 generator: deterministic, fast, seedable.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generate builds an SSB database at the configured scale factor.
func Generate(cfg Config) *storage.Database {
	if cfg.SF <= 0 {
		panic(fmt.Sprintf("ssb: scale factor must be positive, got %f", cfg.SF))
	}
	db := storage.NewDatabase()
	dateKeys := genDate(db)
	custRows := scaled(customerPerSF, cfg.SF)
	suppRows := scaled(supplierPerSF, cfg.SF)
	partRows := partCount(cfg.SF)
	genCustomer(db, custRows, cfg.Seed)
	genSupplier(db, suppRows, cfg.Seed)
	genPart(db, partRows)
	genLineorder(db, scaled(lineorderPerSF, cfg.SF), custRows, suppRows, partRows, dateKeys, cfg.Seed)
	return db
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func partCount(sf float64) int {
	if sf >= 1 {
		return int(float64(partBase) * (1 + math.Log2(sf)))
	}
	return scaled(partBase, sf)
}

// genDate emits the 7-year date dimension (1992-01-01 .. 1998-12-31) and
// returns the datekey column for FK generation.
func genDate(db *storage.Database) []uint32 {
	var (
		keys      []uint32
		years     []uint32
		ymNums    []uint32
		yms       []string
		weeks     []uint32
		months    []uint32
		dayOfWeek []uint32
	)
	daysIn := func(y, m int) int {
		switch m {
		case 1, 3, 5, 7, 8, 10, 12:
			return 31
		case 4, 6, 9, 11:
			return 30
		default:
			if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
				return 29
			}
			return 28
		}
	}
	dow := 3 // 1992-01-01 was a Wednesday
	for y := 1992; y <= 1998; y++ {
		dayOfYear := 0
		for m := 1; m <= 12; m++ {
			for d := 1; d <= daysIn(y, m); d++ {
				dayOfYear++
				keys = append(keys, uint32(y*10000+m*100+d))
				years = append(years, uint32(y))
				ymNums = append(ymNums, uint32(y*100+m))
				yms = append(yms, fmt.Sprintf("%s%d", monthNames[m-1], y))
				weeks = append(weeks, uint32(1+(dayOfYear-1)/7))
				months = append(months, uint32(m))
				dayOfWeek = append(dayOfWeek, uint32(dow))
				dow = (dow + 1) % 7
			}
		}
	}
	t := storage.NewTable("date")
	t.AddIntColumn("d_datekey", keys)
	t.AddIntColumn("d_year", years)
	t.AddIntColumn("d_yearmonthnum", ymNums)
	t.AddStringColumn("d_yearmonth", yms)
	t.AddIntColumn("d_weeknuminyear", weeks)
	t.AddIntColumn("d_monthnuminyear", months)
	t.AddIntColumn("d_daynuminweek", dayOfWeek)
	db.Add(t)
	return keys
}

func genCustomer(db *storage.Database, rows int, seed uint64) {
	r := &rng{s: seed ^ 0xC057}
	keys := make([]uint32, rows)
	cities := make([]string, rows)
	nats := make([]string, rows)
	regs := make([]string, rows)
	segs := make([]string, rows)
	segments := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	for i := 0; i < rows; i++ {
		keys[i] = uint32(i + 1)
		n := nations[r.intn(len(nations))]
		nats[i] = n.name
		regs[i] = n.region
		cities[i] = cityName(n.name, r.intn(10))
		segs[i] = segments[r.intn(len(segments))]
	}
	t := storage.NewTable("customer")
	t.AddIntColumn("c_custkey", keys)
	t.AddStringColumn("c_city", cities)
	t.AddStringColumn("c_nation", nats)
	t.AddStringColumn("c_region", regs)
	t.AddStringColumn("c_mktsegment", segs)
	db.Add(t)
}

func genSupplier(db *storage.Database, rows int, seed uint64) {
	r := &rng{s: seed ^ 0x5099}
	keys := make([]uint32, rows)
	cities := make([]string, rows)
	nats := make([]string, rows)
	regs := make([]string, rows)
	for i := 0; i < rows; i++ {
		keys[i] = uint32(i + 1)
		n := nations[r.intn(len(nations))]
		nats[i] = n.name
		regs[i] = n.region
		cities[i] = cityName(n.name, r.intn(10))
	}
	t := storage.NewTable("supplier")
	t.AddIntColumn("s_suppkey", keys)
	t.AddStringColumn("s_city", cities)
	t.AddStringColumn("s_nation", nats)
	t.AddStringColumn("s_region", regs)
	db.Add(t)
}

func genPart(db *storage.Database, rows int) {
	keys := make([]uint32, rows)
	mfgrs := make([]string, rows)
	cats := make([]string, rows)
	brands := make([]string, rows)
	sizes := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		keys[i] = uint32(i + 1)
		m := 1 + i%5
		c := 1 + (i/5)%5
		b := 1 + (i/25)%40
		mfgrs[i] = fmt.Sprintf("MFGR#%d", m)
		cats[i] = fmt.Sprintf("MFGR#%d%d", m, c)
		brands[i] = fmt.Sprintf("MFGR#%d%d%d", m, c, b)
		sizes[i] = uint32(1 + i%50)
	}
	t := storage.NewTable("part")
	t.AddIntColumn("p_partkey", keys)
	t.AddStringColumn("p_mfgr", mfgrs)
	t.AddStringColumn("p_category", cats)
	t.AddStringColumn("p_brand1", brands)
	t.AddIntColumn("p_size", sizes)
	db.Add(t)
}

func genLineorder(db *storage.Database, rows, custRows, suppRows, partRows int, dateKeys []uint32, seed uint64) {
	r := &rng{s: seed ^ 0x11E0}
	custkey := make([]uint32, rows)
	partkey := make([]uint32, rows)
	suppkey := make([]uint32, rows)
	orderdate := make([]uint32, rows)
	quantity := make([]uint32, rows)
	extprice := make([]uint32, rows)
	discount := make([]uint32, rows)
	revenue := make([]uint32, rows)
	supplycost := make([]uint32, rows)
	ordkey := make([]uint32, rows)
	for i := 0; i < rows; i++ {
		ordkey[i] = uint32(1 + i/4)
		custkey[i] = uint32(1 + r.intn(custRows))
		partkey[i] = uint32(1 + r.intn(partRows))
		suppkey[i] = uint32(1 + r.intn(suppRows))
		orderdate[i] = dateKeys[r.intn(len(dateKeys))]
		q := uint32(1 + r.intn(50))
		quantity[i] = q
		price := uint32(90_000 + r.intn(110_000))
		ep := q * price // <= 50 * 200,000 = 10M, product with discount fits 32 bits
		extprice[i] = ep
		d := uint32(r.intn(11)) // 0..10 percent
		discount[i] = d
		rev := ep * (100 - d) / 100
		revenue[i] = rev
		supplycost[i] = rev * uint32(40+r.intn(20)) / 100
	}
	t := storage.NewTable("lineorder")
	t.AddIntColumn("lo_orderkey", ordkey)
	t.AddIntColumn("lo_custkey", custkey)
	t.AddIntColumn("lo_partkey", partkey)
	t.AddIntColumn("lo_suppkey", suppkey)
	t.AddIntColumn("lo_orderdate", orderdate)
	t.AddIntColumn("lo_quantity", quantity)
	t.AddIntColumn("lo_extendedprice", extprice)
	t.AddIntColumn("lo_discount", discount)
	t.AddIntColumn("lo_revenue", revenue)
	t.AddIntColumn("lo_supplycost", supplycost)
	db.Add(t)
}
