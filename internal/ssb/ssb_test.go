package ssb

import (
	"testing"

	"castle/internal/plan"
	"castle/internal/sql"
)

func TestGenerateSchema(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 42})
	lo := db.MustTable("lineorder")
	if lo.Rows() != 60000 {
		t.Fatalf("lineorder rows = %d, want 60000 at SF 0.01", lo.Rows())
	}
	if db.MustTable("customer").Rows() != 300 {
		t.Fatalf("customer rows = %d, want 300", db.MustTable("customer").Rows())
	}
	if db.MustTable("supplier").Rows() != 20 {
		t.Fatalf("supplier rows = %d, want 20", db.MustTable("supplier").Rows())
	}
	if db.MustTable("part").Rows() != 2000 {
		t.Fatalf("part rows = %d, want 2000", db.MustTable("part").Rows())
	}
	// 1992..1998 inclusive with leap years 1992 and 1996.
	if got := db.MustTable("date").Rows(); got != 2557 {
		t.Fatalf("date rows = %d, want 2557", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.01, Seed: 7})
	b := Generate(Config{SF: 0.01, Seed: 7})
	ca := a.MustTable("lineorder").MustColumn("lo_custkey").Data
	cb := b.MustTable("lineorder").MustColumn("lo_custkey").Data
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("generation not deterministic at row %d", i)
		}
	}
	c := Generate(Config{SF: 0.01, Seed: 8})
	cc := c.MustTable("lineorder").MustColumn("lo_custkey").Data
	same := true
	for i := range ca {
		if ca[i] != cc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different data")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	lo := db.MustTable("lineorder")
	checkFK := func(fkCol, dim, keyCol string) {
		t.Helper()
		keys := map[uint32]bool{}
		for _, k := range db.MustTable(dim).MustColumn(keyCol).Data {
			keys[k] = true
		}
		for i, v := range lo.MustColumn(fkCol).Data {
			if !keys[v] {
				t.Fatalf("%s row %d = %d not in %s.%s", fkCol, i, v, dim, keyCol)
			}
		}
	}
	checkFK("lo_custkey", "customer", "c_custkey")
	checkFK("lo_suppkey", "supplier", "s_suppkey")
	checkFK("lo_partkey", "part", "p_partkey")
	checkFK("lo_orderdate", "date", "d_datekey")
}

func TestValueDomains(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	lo := db.MustTable("lineorder")
	for i := range lo.MustColumn("lo_quantity").Data {
		q := lo.MustColumn("lo_quantity").Data[i]
		d := lo.MustColumn("lo_discount").Data[i]
		rev := lo.MustColumn("lo_revenue").Data[i]
		sc := lo.MustColumn("lo_supplycost").Data[i]
		ep := lo.MustColumn("lo_extendedprice").Data[i]
		if q < 1 || q > 50 {
			t.Fatalf("quantity %d out of [1,50]", q)
		}
		if d > 10 {
			t.Fatalf("discount %d out of [0,10]", d)
		}
		if sc > rev {
			t.Fatalf("supplycost %d exceeds revenue %d (profit must be non-negative)", sc, rev)
		}
		// The Q1 aggregate extendedprice*discount must fit in 32 bits.
		if uint64(ep)*uint64(d) > uint64(^uint32(0)) {
			t.Fatalf("extendedprice*discount overflows 32 bits: %d * %d", ep, d)
		}
	}
}

func TestDimensionAttributes(t *testing.T) {
	db := Generate(Config{SF: 0.02, Seed: 1})
	cust := db.MustTable("customer")
	region := cust.MustColumn("c_region")
	seen := map[string]bool{}
	for _, v := range region.Data {
		seen[region.Dict.Decode(v)] = true
	}
	for _, want := range []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"} {
		if !seen[want] {
			t.Errorf("region %s never generated", want)
		}
	}
	// City name format: 9 chars + digit.
	city := cust.MustColumn("c_city")
	for _, v := range city.Data[:10] {
		s := city.Dict.Decode(v)
		if len(s) != 10 {
			t.Fatalf("city %q should be 10 characters", s)
		}
	}
	// Part hierarchy: brand prefix is category, category prefix is mfgr.
	part := db.MustTable("part")
	mfgr := part.MustColumn("p_mfgr")
	cat := part.MustColumn("p_category")
	brand := part.MustColumn("p_brand1")
	for i := 0; i < part.Rows(); i++ {
		m := mfgr.Dict.Decode(mfgr.Data[i])
		c := cat.Dict.Decode(cat.Data[i])
		b := brand.Dict.Decode(brand.Data[i])
		if c[:len(m)] != m || b[:len(c)] != c {
			t.Fatalf("hierarchy broken: %s / %s / %s", m, c, b)
		}
	}
}

func TestDateDimension(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 1})
	d := db.MustTable("date")
	years := d.MustColumn("d_year")
	if years.Min != 1992 || years.Max != 1998 {
		t.Fatalf("year range [%d,%d], want [1992,1998]", years.Min, years.Max)
	}
	ym := d.MustColumn("d_yearmonth")
	if _, ok := ym.Dict.Encode("Dec1997"); !ok {
		t.Fatal("d_yearmonth should contain Dec1997 (needed by Q3.4)")
	}
	ymn := d.MustColumn("d_yearmonthnum")
	found := false
	for _, v := range ymn.Data {
		if v == 199401 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("d_yearmonthnum should contain 199401 (needed by Q1.2)")
	}
}

func TestInvalidSFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SF <= 0")
		}
	}()
	Generate(Config{SF: 0})
}

// TestAllQueriesParseAndBind ensures every benchmark query goes through the
// full SQL front end against the generated schema.
func TestAllQueriesParseAndBind(t *testing.T) {
	db := Generate(Config{SF: 0.01, Seed: 42})
	qs := Queries()
	if len(qs) != 13 {
		t.Fatalf("query count = %d, want 13", len(qs))
	}
	for _, q := range qs {
		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.Flight, err)
		}
		bound, err := plan.Bind(stmt, db)
		if err != nil {
			t.Fatalf("%s: bind: %v", q.Flight, err)
		}
		if bound.Fact != "lineorder" {
			t.Fatalf("%s: fact = %s", q.Flight, bound.Fact)
		}
		if len(bound.Joins) != q.JoinCount {
			t.Fatalf("%s: joins = %d, want %d", q.Flight, len(bound.Joins), q.JoinCount)
		}
		if q.Num != 0 && (q.Num < 1 || q.Num > 13) {
			t.Fatalf("%s: bad number %d", q.Flight, q.Num)
		}
	}
	// Queries 1-3 have one join, 4-13 have 2-4 (§4.2 says queries 4-13
	// execute two to four joins).
	for _, q := range qs {
		if q.Num <= 3 && q.JoinCount != 1 {
			t.Errorf("%s: expected single join", q.Flight)
		}
		if q.Num >= 4 && (q.JoinCount < 2 || q.JoinCount > 4) {
			t.Errorf("%s: expected 2-4 joins", q.Flight)
		}
	}
}
