package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector should have no set bits")
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
	if v.First() != -1 {
		t.Fatalf("First = %d, want -1", v.First())
	}
}

func TestNewSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := NewSet(n)
		if v.Count() != n {
			t.Errorf("NewSet(%d).Count = %d", n, v.Count())
		}
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		v.Set(i)
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 7 {
		t.Fatalf("Count = %d, want 7", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 should be clear")
	}
	v.SetTo(64, true)
	if !v.Get(64) {
		t.Error("SetTo(64, true) failed")
	}
	v.SetTo(64, false)
	if v.Get(64) {
		t.Error("SetTo(64, false) failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(10).Set(10)
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).And(New(11))
}

func TestFirstAndNextAfter(t *testing.T) {
	v := FromIndices(300, []int{5, 64, 65, 299})
	if got := v.First(); got != 5 {
		t.Fatalf("First = %d, want 5", got)
	}
	want := []int{5, 64, 65, 299}
	var got []int
	for i := v.First(); i != -1; i = v.NextAfter(i) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if v.NextAfter(299) != -1 {
		t.Error("NextAfter(last) should be -1")
	}
	if v.NextAfter(-1) != 5 {
		t.Error("NextAfter(-1) should return First")
	}
}

func TestLogicalOps(t *testing.T) {
	a := FromBools([]bool{true, true, false, false})
	b := FromBools([]bool{true, false, true, false})

	and := a.Clone().And(b)
	or := a.Clone().Or(b)
	xor := a.Clone().Xor(b)
	andNot := a.Clone().AndNot(b)
	not := a.Clone().Not()

	check := func(name string, v *Vector, want []bool) {
		t.Helper()
		for i, w := range want {
			if v.Get(i) != w {
				t.Errorf("%s bit %d = %v, want %v", name, i, v.Get(i), w)
			}
		}
	}
	check("and", and, []bool{true, false, false, false})
	check("or", or, []bool{true, true, true, false})
	check("xor", xor, []bool{false, true, true, false})
	check("andnot", andNot, []bool{false, true, false, false})
	check("not", not, []bool{false, false, true, true})
}

func TestNotTrimsTail(t *testing.T) {
	v := New(10)
	v.Not()
	if v.Count() != 10 {
		t.Fatalf("Not on 10-bit vector: Count = %d, want 10", v.Count())
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	idx := []int{0, 17, 64, 100, 511}
	v := FromIndices(512, idx)
	got := v.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices = %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices = %v, want %v", got, idx)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	v := FromIndices(100, []int{1, 50, 99})
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone should be equal")
	}
	w.Clear(50)
	if v.Equal(w) {
		t.Fatal("modified clone should differ")
	}
	if v.Equal(New(99)) {
		t.Fatal("different lengths should not be equal")
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(64)
	w := FromIndices(64, []int{3, 33})
	v.CopyFrom(w)
	if !v.Equal(w) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestString(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if got := v.String(); got != "101" {
		t.Fatalf("String = %q, want 101", got)
	}
	long := NewSet(200)
	if s := long.String(); len(s) == 0 {
		t.Fatal("long String should not be empty")
	}
}

// Property: Count equals the number of true entries used to build the vector.
func TestQuickCountMatchesBools(t *testing.T) {
	f := func(b []bool) bool {
		v := FromBools(b)
		n := 0
		for _, x := range b {
			if x {
				n++
			}
		}
		return v.Count() == n && v.Len() == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — NOT(a AND b) == NOT(a) OR NOT(b).
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomVec(rng, n), randomVec(rng, n)
		left := a.Clone().And(b).Not()
		right := a.Clone().Not().Or(b.Clone().Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR is its own inverse — (a XOR b) XOR b == a.
func TestQuickXorInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := randomVec(rng, n), randomVec(rng, n)
		return a.Clone().Xor(b).Xor(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: iterating NextAfter visits exactly Indices().
func TestQuickIterationMatchesIndices(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		rng := rand.New(rand.NewSource(seed))
		v := randomVec(rng, n)
		idx := v.Indices()
		j := 0
		for i := v.First(); i != -1; i = v.NextAfter(i) {
			if j >= len(idx) || idx[j] != i {
				return false
			}
			j++
		}
		return j == len(idx) && len(idx) == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randomVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func BenchmarkCount32K(b *testing.B) {
	v := NewSet(32768)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.Count()
	}
}

func BenchmarkAnd32K(b *testing.B) {
	v, w := NewSet(32768), NewSet(32768)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.And(w)
	}
}
