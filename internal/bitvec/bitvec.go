// Package bitvec provides dense bit vectors used throughout the Castle
// system to represent selection masks, join result masks, and the tag bits
// of CAPE's associative subarrays.
//
// A Vector holds n bits packed into 64-bit words. The zero value is an empty
// vector; use New to allocate one of a given length. All logical operations
// require operands of equal length and panic otherwise, because masks of
// mismatched length indicate a planning bug, not a runtime condition.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length dense bit vector.
type Vector struct {
	n     int
	words []uint64
}

// New returns a Vector of n bits, all clear.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewSet returns a Vector of n bits, all set.
func NewSet(n int) *Vector {
	v := New(n)
	v.SetAll()
	return v
}

// FromBools builds a Vector from a boolean slice.
func FromBools(b []bool) *Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds a Vector of n bits with the given indices set.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused tail bits of the last word so Count and Equal work.
func (v *Vector) trim() {
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits (population count).
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v *Vector) None() bool { return !v.Any() }

// First returns the index of the lowest set bit, or -1 if none is set.
// This models CAPE's priority-encoder tree (the vfirst/vmfirst instruction).
func (v *Vector) First() int {
	for wi, w := range v.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the index of the lowest set bit strictly greater than i,
// or -1 if none. Pass i = -1 to start from the beginning.
func (v *Vector) NextAfter(i int) int {
	i++
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	w := New(v.n)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of o (equal lengths required).
func (v *Vector) CopyFrom(o *Vector) {
	v.sameLen(o)
	copy(v.words, o.words)
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// And stores v &= o.
func (v *Vector) And(o *Vector) *Vector {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
	return v
}

// Or stores v |= o.
func (v *Vector) Or(o *Vector) *Vector {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
	return v
}

// Xor stores v ^= o.
func (v *Vector) Xor(o *Vector) *Vector {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
	return v
}

// AndNot stores v &^= o.
func (v *Vector) AndNot(o *Vector) *Vector {
	v.sameLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
	return v
}

// Not inverts every bit in place.
func (v *Vector) Not() *Vector {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
	return v
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the indices of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	for i := v.First(); i != -1; i = v.NextAfter(i) {
		out = append(out, i)
	}
	return out
}

// String renders the vector as a compact 0/1 string (LSB first), capped for
// readability on long vectors.
func (v *Vector) String() string {
	const cap = 128
	var b strings.Builder
	n := v.n
	trunc := false
	if n > cap {
		n, trunc = cap, true
	}
	for i := 0; i < n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&b, "... (%d bits, %d set)", v.n, v.Count())
	}
	return b.String()
}
