package optimizer

// predict.go exposes the placement cost model as a prediction surface for
// executions whose device was forced (DeviceCAPE, DeviceCPU, whole-query
// hybrid routing): the same per-operator annotations the placement search
// prices become the "est" half of EXPLAIN ANALYZE's predicted-vs-actual
// columns and the flight recorder's misestimate telemetry.

import (
	"castle/internal/plan"
	"castle/internal/stats"
)

// PredictUniform compiles p with every operator on dev and annotates it
// with the default cost model's per-operator estimates. The returned plan's
// AltEstCycles carries the other device's uniform total, so callers can
// tell when the measured run overtook the road not taken. When the other
// device cannot run the query at all — a grouped SUM(a*b) tail is rejected
// by CAPE's aggregation kernel — there is no road not taken: AltFeasible
// stays false and AltEstCycles zero, so would-flip telemetry cannot count
// an un-flippable plan.
func PredictUniform(p *plan.Physical, cat *stats.Catalog, maxvl int, dev plan.Device) *plan.PlacedPlan {
	c := newPlaceCtx(p, cat, maxvl, DefaultCostModel())
	pp := plan.Compile(p, dev)
	c.annotate(pp, dev, dev, nil)
	if otherDevice(dev) == plan.DeviceCAPE && hasGroupedSumMul(p.Query) {
		return pp
	}
	alt := plan.Compile(p, otherDevice(dev))
	pp.AltEstCycles = c.annotate(alt, otherDevice(dev), otherDevice(dev), nil)
	pp.AltFeasible = true
	return pp
}

// SharedEstimate prices a fused multi-query group run (plan.SharedScan):
// the fact sweep's column stream is charged once over the union of member
// columns, each member keeps its own compute (filter, probes, aggregation,
// dimension prep), and the shared term is attributed pro-rata with a
// largest-remainder split so MemberCycles sums to GroupCycles exactly —
// the predicted twin of the executors' shared-sweep attribution.
type SharedEstimate struct {
	// GroupCycles is the predicted total for the fused run.
	GroupCycles int64
	// SharedScanCycles is the fused column-stream term, charged once.
	SharedScanCycles int64
	// MemberCycles is each member's attributed share; sums to GroupCycles.
	MemberCycles []int64
}

// PredictShared prices the member plans as one fused sweep on dev. Each
// member's exclusive cost is its uniform single-device estimate minus its
// own fact-scan stream (which the fusion deduplicates), floored at zero;
// the shared stream is priced once over the union of member fact columns.
func PredictShared(plans []*plan.Physical, cat *stats.Catalog, maxvl int, dev plan.Device) (SharedEstimate, error) {
	ss, err := plan.NewSharedScan(plans)
	if err != nil {
		return SharedEstimate{}, err
	}
	n := len(plans)
	exclusive := make([]int64, n)
	for i, p := range plans {
		c := newPlaceCtx(p, cat, maxvl, DefaultCostModel())
		pp := plan.Compile(p, dev)
		total := c.annotate(pp, dev, dev, nil)
		e := total - int64(c.scanCost(dev))
		if e < 0 {
			e = 0
		}
		exclusive[i] = e
	}

	m := DefaultCostModel().withDefaults()
	rate := m.CPUStreamBytesPerCycle
	if dev == plan.DeviceCAPE {
		rate = m.CAPEStreamBytesPerCycle
	}
	factRows := float64(cat.MustTable(ss.Fact).Rows)
	shared := int64(4 * factRows * float64(len(ss.SharedColumns())) / rate)

	est := SharedEstimate{SharedScanCycles: shared, MemberCycles: make([]int64, n)}
	for i, e := range exclusive {
		s := shared / int64(n)
		if int64(i) < shared%int64(n) {
			s++
		}
		est.MemberCycles[i] = e + s
		est.GroupCycles += e + s
	}
	return est, nil
}
