package optimizer

// predict.go exposes the placement cost model as a prediction surface for
// executions whose device was forced (DeviceCAPE, DeviceCPU, whole-query
// hybrid routing): the same per-operator annotations the placement search
// prices become the "est" half of EXPLAIN ANALYZE's predicted-vs-actual
// columns and the flight recorder's misestimate telemetry.

import (
	"castle/internal/plan"
	"castle/internal/stats"
)

// PredictUniform compiles p with every operator on dev and annotates it
// with the default cost model's per-operator estimates. The returned plan's
// AltEstCycles carries the other device's uniform total, so callers can
// tell when the measured run overtook the road not taken. When the other
// device cannot run the query at all — a grouped SUM(a*b) tail is rejected
// by CAPE's aggregation kernel — there is no road not taken: AltFeasible
// stays false and AltEstCycles zero, so would-flip telemetry cannot count
// an un-flippable plan.
func PredictUniform(p *plan.Physical, cat *stats.Catalog, maxvl int, dev plan.Device) *plan.PlacedPlan {
	c := newPlaceCtx(p, cat, maxvl, DefaultCostModel())
	pp := plan.Compile(p, dev)
	c.annotate(pp, dev, dev, nil)
	if otherDevice(dev) == plan.DeviceCAPE && hasGroupedSumMul(p.Query) {
		return pp
	}
	alt := plan.Compile(p, otherDevice(dev))
	pp.AltEstCycles = c.annotate(alt, otherDevice(dev), otherDevice(dev), nil)
	pp.AltFeasible = true
	return pp
}
