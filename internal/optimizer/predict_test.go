package optimizer

import (
	"strings"
	"testing"

	"castle/internal/plan"
	"castle/internal/ssb"
	"castle/internal/stats"
)

// ssbPhysical optimizes one SSB query (1..13) against a small generated
// database.
func ssbPhysical(t *testing.T, num int) (*plan.Physical, *stats.Catalog) {
	t.Helper()
	db, cat := ssbEnv(t)
	q := bindSQL(t, db, ssb.Queries()[num-1].SQL)
	p, err := Optimize(q, cat, 32768)
	if err != nil {
		t.Fatal(err)
	}
	return p, cat
}

// TestPredictUniform checks the forced-device prediction surface: the
// annotated plan is uniform on the requested device, every priced operator
// carries a positive estimate, the estimate map speaks the breakdown-row
// vocabulary, and AltEstCycles prices the other device.
func TestPredictUniform(t *testing.T) {
	p, cat := ssbPhysical(t, 4) // Q2.1: three joins, grouped
	for _, dev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		pp := PredictUniform(p, cat, 32768, dev)
		if got, uniform := pp.Uniform(); !uniform || got != dev {
			t.Fatalf("prediction for %v is not uniform: %v %v", dev, got, uniform)
		}
		if pp.EstCycles() <= 0 {
			t.Fatalf("prediction for %v has no total", dev)
		}
		if pp.AltEstCycles <= 0 {
			t.Fatalf("prediction for %v has no alternative total", dev)
		}
		ests := pp.Estimates()
		if len(ests) == 0 {
			t.Fatalf("prediction for %v yields no row estimates", dev)
		}
		rows := map[string]bool{}
		for _, e := range ests {
			if e.Cycles <= 0 {
				t.Fatalf("%v row %q priced at %d", dev, e.Row, e.Cycles)
			}
			if e.Device != dev {
				t.Fatalf("%v row %q placed on %v", dev, e.Row, e.Device)
			}
			rows[e.Row] = true
		}
		for _, want := range []string{"filter", "aggregate", "join:date"} {
			if !rows[want] {
				t.Fatalf("%v estimates missing row %q; have %v", dev, want, rows)
			}
		}
		for row := range rows {
			if strings.HasPrefix(row, "xfer:") {
				t.Fatalf("uniform %v prediction charges a transfer: %q", dev, row)
			}
		}
		if m := pp.EstimateMap(); len(m) != len(ests) {
			t.Fatalf("estimate map dropped rows: %d vs %d", len(m), len(ests))
		}
	}
	// The two uniform predictions are each other's alternatives.
	cape := PredictUniform(p, cat, 32768, plan.DeviceCAPE)
	cpu := PredictUniform(p, cat, 32768, plan.DeviceCPU)
	if cape.AltEstCycles != cpu.EstCycles() || cpu.AltEstCycles != cape.EstCycles() {
		t.Fatalf("alternatives do not cross: cape alt=%d cpu=%d; cpu alt=%d cape=%d",
			cape.AltEstCycles, cpu.EstCycles(), cpu.AltEstCycles, cape.EstCycles())
	}
}

// TestPredictUniformInfeasibleAlternative is the single-candidate
// regression: a grouped SUM(a*b) forced onto the CPU has no CAPE road not
// taken (the kernel rejects that tail), so the prediction must mark the
// alternative infeasible instead of publishing a garbage runner-up that
// would-flip telemetry then counts.
func TestPredictUniformInfeasibleAlternative(t *testing.T) {
	db, cat := ssbEnv(t)
	q := bindSQL(t, db, `
		SELECT d_year, SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 1993
		GROUP BY d_year`)
	p, err := Optimize(q, cat, 32768)
	if err != nil {
		t.Fatal(err)
	}
	pp := PredictUniform(p, cat, 32768, plan.DeviceCPU)
	if pp.AltFeasible || pp.AltEstCycles != 0 {
		t.Fatalf("grouped SUM(a*b) on CPU reported a CAPE alternative: feasible=%v alt=%d",
			pp.AltFeasible, pp.AltEstCycles)
	}
	// The CAPE->CPU direction is fine: the CPU can always take the query.
	if pp := PredictUniform(p, cat, 32768, plan.DeviceCAPE); !pp.AltFeasible || pp.AltEstCycles <= 0 {
		t.Fatalf("forced-CAPE prediction lost its CPU alternative: feasible=%v alt=%d",
			pp.AltFeasible, pp.AltEstCycles)
	}
	// Ordinary shapes keep both candidates.
	p2, cat2 := ssbPhysical(t, 4)
	for _, dev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		if pp := PredictUniform(p2, cat2, 32768, dev); !pp.AltFeasible {
			t.Fatalf("ordinary query on %v lost its alternative", dev)
		}
	}
}

// TestPlacePlanAltEstimate checks the placement search records the
// runner-up: the winning placement's AltEstCycles is the cheapest rejected
// (fact, agg) device combination and never beats the winner.
func TestPlacePlanAltEstimate(t *testing.T) {
	for num := 1; num <= 13; num++ {
		p, cat := ssbPhysical(t, num)
		pp := PlacePlan(p, cat, 32768)
		if pp.AltEstCycles <= 0 {
			t.Errorf("query %d: no runner-up estimate", num)
			continue
		}
		if pp.AltEstCycles < pp.EstCycles() {
			t.Errorf("query %d: runner-up %d beats winner %d",
				num, pp.AltEstCycles, pp.EstCycles())
		}
	}
}
