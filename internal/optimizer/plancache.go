package optimizer

// plancache.go is the prepared-plan cache behind DB.QueryContext: an LRU
// map from statement fingerprints to bound-and-optimized plans. Analytic
// serving workloads repeat a small set of statement templates, so skipping
// parse/bind/optimize on repeats removes the per-request planning cost the
// moment a statement is seen twice.
//
// Cached plans are immutable by convention: binding and optimization
// produce structures that both executors only read, so one cached plan can
// back any number of concurrent executions. Consistency with the stored
// data is enforced by a version number — every DDL or import bumps the
// database's version, and a Get or Put carrying a newer version than the
// cache's flushes everything cached against the old schema.

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"castle/internal/plan"
)

// CachedPlan is one prepared statement: the bound logical query and, for
// executions that go through the optimizer, the physical plan. Phys is nil
// when preparation stopped at binding (the pure-CPU path, which consumes
// the bound query directly).
type CachedPlan struct {
	Bound *plan.Query
	Phys  *plan.Physical
}

// Fingerprint derives the plan-cache key for a statement prepared under a
// device class and optimizer inputs. Everything that can change the bound
// or physical plan must land in the key: the SQL text, the device class
// ("cpu" preparations stop at binding, "cape" ones optimize), the vector
// length the optimizer partitions by, and any forced plan shape. Execution
// knobs that leave the plan untouched (fusion, MKS buffer, enhancements)
// deliberately do not fragment the key.
func Fingerprint(sqlText, deviceClass string, maxvl int, shape plan.Shape, shapeForced bool) string {
	sh := "auto"
	if shapeForced {
		sh = shape.String()
	}
	return fmt.Sprintf("%s|%s|%d|%s", deviceClass, sh, maxvl, strings.TrimSpace(sqlText))
}

// Token folds the statistics epoch into the version token the plan cache
// invalidates on. Plans are now priced from histograms, so a statistics
// refresh stales every cached placement even when the schema version alone
// would not have moved — the cache must see a different token whenever
// either input changes. syncVersion flushes on any difference (no
// monotonicity assumption), so a mixed token is safe; the multiplier keeps
// (version, epoch) pairs from colliding under small deltas.
func Token(version, statsEpoch uint64) uint64 {
	x := version ^ (statsEpoch * 0x9e3779b97f4a7c15)
	x ^= x >> 32
	return x
}

// DefaultPlanCacheCapacity bounds the cache when the caller passes no
// capacity. Serving workloads cycle through tens of statement templates;
// 256 keeps them all resident while bounding a pathological client that
// never repeats a statement.
const DefaultPlanCacheCapacity = 256

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int
	Evictions int64
	// Flushes counts whole-cache invalidations from schema/data changes.
	Flushes int64
}

// PlanCache is a thread-safe LRU of prepared plans, invalidated wholesale
// when the database version moves.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	version  uint64
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element

	hits, misses, evictions, flushes int64
}

type cacheEntry struct {
	key  string
	plan CachedPlan
}

// NewPlanCache returns an empty cache holding up to capacity plans
// (capacity <= 0 selects DefaultPlanCacheCapacity).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &PlanCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// syncVersion flushes the cache if the caller's database version differs
// from the one the entries were prepared against. Called with mu held.
func (c *PlanCache) syncVersion(version uint64) {
	if version == c.version {
		return
	}
	if c.order.Len() > 0 {
		c.flushes++
	}
	c.order.Init()
	c.byKey = make(map[string]*list.Element)
	c.version = version
}

// Get returns the cached plan for key if one was prepared against the given
// database version. A version mismatch invalidates the whole cache (a
// schema or data change stales every plan, not just this statement's).
func (c *PlanCache) Get(key string, version uint64) (CachedPlan, bool) {
	if c == nil {
		return CachedPlan{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncVersion(version)
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return CachedPlan{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// Put stores a prepared plan under key for the given database version,
// evicting the least recently used entry when the cache is full.
func (c *PlanCache) Put(key string, version uint64, p CachedPlan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncVersion(version)
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, plan: p})
}

// Purge drops every entry (statistics are preserved).
func (c *PlanCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[string]*list.Element)
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   c.order.Len(),
		Evictions: c.evictions,
		Flushes:   c.flushes,
	}
}
