package optimizer

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castle/internal/plan"
	"castle/internal/ssb"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN snapshots")

// TestPlacedExplainGolden snapshots the placed operator tree of all
// thirteen SSB queries under the default cost model — the auto placement
// plus both uniform single-device placements — pinning the EXPLAIN surface
// end to end: operator order, probe directions, devices, and cost
// annotations. Regenerate with `go test ./internal/optimizer -run Golden
// -update` after an intentional cost-model change.
func TestPlacedExplainGolden(t *testing.T) {
	db, cat := ssbEnv(t)
	const maxvl = 32768

	var b strings.Builder
	fmt.Fprintf(&b, "SSB placed operator trees (SF 0.01, seed 20260704, MAXVL %d)\n", maxvl)
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, maxvl)
		if err != nil {
			t.Fatal(err)
		}
		c := newPlaceCtx(p, cat, maxvl, DefaultCostModel())

		fmt.Fprintf(&b, "\n==== %s (query %d) ====\n", qq.Flight, qq.Num)
		fmt.Fprintf(&b, "-- auto --\n%s\n", PlacePlan(p, cat, maxvl).String())
		for _, dev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
			pp := plan.Compile(p, dev)
			c.annotate(pp, dev, dev, nil)
			fmt.Fprintf(&b, "-- uniform %s --\n%s\n", dev, pp.String())
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "placed_explain.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("placed EXPLAIN trees diverged from %s; rerun with -update if the cost model changed intentionally.\ngot:\n%s", path, got)
	}
}
