package optimizer

// replace.go is the adaptive half of statistics-driven placement: once the
// fact stage has actually run, the executor knows the true survivor count,
// and the aggregation tail — which has not executed yet — can be re-placed
// with that observation instead of the histogram estimate. The re-placement
// search only re-prices the tail candidates (the fact stage and dimension
// builds are sunk cost, identical across candidates), so comparing whole-
// pipeline totals picks the same winner as comparing tails alone.

import (
	"math"

	"castle/internal/plan"
	"castle/internal/stats"
)

// ReplaceTail re-runs the placement search for the unexecuted aggregation
// tail of an already-started pipeline, with the fact stage's observed
// survivor count substituted for the estimate. The fact stage and dimension
// devices are pinned to what already executed; only the tail's device is
// reconsidered (CAPE stays excluded for grouped SUM(a*b) tails, which its
// aggregation kernel rejects). Returns a freshly annotated plan whose tail
// ops carry EstSource "observed", and whether the tail device changed.
func ReplaceTail(pp *plan.PlacedPlan, cat *stats.Catalog, maxvl int, m CostModel, observed int64) (*plan.PlacedPlan, bool) {
	q := pp.Phys.Query
	c := newPlaceCtx(pp.Phys, cat, maxvl, m)
	c.tailSrc = stats.SourceObserved.String()
	if observed < 0 {
		observed = 0
	}
	c.matched = float64(observed)
	// A group needs at least one surviving row, so the observed survivor
	// count caps the group estimate too (but never below 1 — the empty
	// grouping still emits its scalar row).
	if g := float64(observed); len(q.GroupBy) > 0 && c.groups > g {
		if g < 1 {
			g = 1
		}
		c.groups = g
	}

	factDev := pp.FactDevice()
	curAgg := pp.AggDevice()
	dimDev := make(map[string]plan.Device, len(pp.Phys.Joins))
	for _, op := range pp.Ops {
		if op.Kind == plan.OpDimBuild {
			dimDev[op.Dim] = op.Device
		}
	}

	aggDevs := []plan.Device{curAgg, otherDevice(curAgg)}
	if hasGroupedSumMul(q) {
		aggDevs = []plan.Device{plan.DeviceCPU}
	}

	var best *plan.PlacedPlan
	bestCost, altCost := int64(math.MaxInt64), int64(math.MaxInt64)
	for _, aggDev := range aggDevs {
		cand := plan.Compile(pp.Phys, factDev)
		cost := c.annotate(cand, factDev, aggDev, dimDev)
		// Strict < with the incumbent tail device tried first: equal-cost
		// candidates keep the tail where the original search put it.
		if cost < bestCost {
			if best != nil && bestCost < altCost {
				altCost = bestCost
			}
			best, bestCost = cand, cost
		} else if cost < altCost {
			altCost = cost
		}
	}
	if altCost < int64(math.MaxInt64) {
		best.AltEstCycles = altCost
		best.AltFeasible = true
	}
	return best, best.AggDevice() != curAgg
}
