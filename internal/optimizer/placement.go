package optimizer

// placement.go assigns a device to every operator of a physical plan (the
// per-operator half of the paper's §7.2 deployment model). The placement
// search reuses the Figure-5 search counts for CAPE join work, mirrors both
// executors' charge models for the remaining operators, and charges an
// explicit transfer cost whenever the pipeline crosses CAPE<->CPU — so a
// selective fact pipeline can run on CAPE while a high-cardinality
// aggregation (Figure 12's crossover) lands on the CPU, instead of the
// whole query moving.

import (
	"math"

	"castle/internal/plan"
	"castle/internal/stats"
)

// CostModel calibrates the per-operator placement costs. All fields are in
// simulated cycles (of the respective device's clock; the model treats the
// two clocks as comparable, which matches the facade's cycle-denominated
// metrics). Zero values select the defaults.
type CostModel struct {
	// SearchCycles is the CAM-mode cost of one associative search (§5: a
	// 3-cycle wired-NOR compare regardless of width).
	SearchCycles float64
	// CAPEStreamBytesPerCycle / CPUStreamBytesPerCycle approximate each
	// device's streaming bandwidth in bytes per cycle (DRAM bandwidth over
	// clock), pricing column scans and values-array compaction.
	CAPEStreamBytesPerCycle float64
	CPUStreamBytesPerCycle  float64
	// CPUScanCyclesPerRow is the branchless SIMD selection-scan throughput.
	CPUScanCyclesPerRow float64
	// CPUHashCyclesPerKey / CPUAggUpdateCyclesPerRow mirror
	// baseline.Kernels' hash-join and hash-aggregation constants.
	CPUHashCyclesPerKey      float64
	CPUAggUpdateCyclesPerRow float64
	// CAPEGroupLoopCycles is Algorithm 2's per-group loop overhead within
	// one partition (vfirst + vextract + search + mask ops + CP
	// bookkeeping); CAPEReduceCycles is one predicated bit-serial reduction
	// (≈ the operand's ABA width).
	CAPEGroupLoopCycles float64
	CAPEReduceCycles    float64
	// XferFixedCycles is the fixed device-crossing penalty (mask/values
	// flush, cache handoff, kernel launch on the consumer);
	// XferBytesPerCycle prices the payload.
	XferFixedCycles   float64
	XferBytesPerCycle float64
	// Streaming prices the pre-aggregation crossing with the double-buffered
	// overlap formula instead of the raw wire cycles: with B fact batches,
	// only the drain edge (1/B of the payload) plus whatever transfer
	// exceeds the producer's compute stays on the critical path —
	// xfer = fixed + P - min(P, C_fact)·(B-1)/B, where P is the raw payload
	// cycles and C_fact the fact stage's compute estimate. Matches
	// exec.Placed's xfer-overlap credit, so EXPLAIN ANALYZE's est/act
	// divergence for "xfer" rows stays meaningful under streaming.
	Streaming bool
	// FixedEstimates prices predicates with the classic fixed-constant
	// selectivities instead of the collected statistics (Estimator.Fixed).
	// Used by the bench harness to quantify what the histograms buy; every
	// estimate is stamped "assumed".
	FixedEstimates bool
}

// DefaultCostModel returns the calibration used by the facade.
func DefaultCostModel() CostModel {
	return CostModel{
		SearchCycles:             3,
		CAPEStreamBytesPerCycle:  16,
		CPUStreamBytesPerCycle:   21,
		CPUScanCyclesPerRow:      0.5,
		CPUHashCyclesPerKey:      4,
		CPUAggUpdateCyclesPerRow: 4,
		CAPEGroupLoopCycles:      40,
		CAPEReduceCycles:         34,
		XferFixedCycles:          2000,
		XferBytesPerCycle:        16,
	}
}

func (m CostModel) withDefaults() CostModel {
	d := DefaultCostModel()
	if m.SearchCycles <= 0 {
		m.SearchCycles = d.SearchCycles
	}
	if m.CAPEStreamBytesPerCycle <= 0 {
		m.CAPEStreamBytesPerCycle = d.CAPEStreamBytesPerCycle
	}
	if m.CPUStreamBytesPerCycle <= 0 {
		m.CPUStreamBytesPerCycle = d.CPUStreamBytesPerCycle
	}
	if m.CPUScanCyclesPerRow <= 0 {
		m.CPUScanCyclesPerRow = d.CPUScanCyclesPerRow
	}
	if m.CPUHashCyclesPerKey <= 0 {
		m.CPUHashCyclesPerKey = d.CPUHashCyclesPerKey
	}
	if m.CPUAggUpdateCyclesPerRow <= 0 {
		m.CPUAggUpdateCyclesPerRow = d.CPUAggUpdateCyclesPerRow
	}
	if m.CAPEGroupLoopCycles <= 0 {
		m.CAPEGroupLoopCycles = d.CAPEGroupLoopCycles
	}
	if m.CAPEReduceCycles <= 0 {
		m.CAPEReduceCycles = d.CAPEReduceCycles
	}
	if m.XferFixedCycles <= 0 {
		m.XferFixedCycles = d.XferFixedCycles
	}
	if m.XferBytesPerCycle <= 0 {
		m.XferBytesPerCycle = d.XferBytesPerCycle
	}
	return m
}

// EdgeSearches decomposes the Figure-5 whole-query search count into one
// term per join edge, in plan order: the right-deep segment's filtered
// dimensions probing all fact partitions, then the left-deep segment's
// shrinking intermediate probing each stored dimension. The terms sum to
// Cost(q, est, maxvl, joins, switchAt) exactly — the decomposition
// placement tests pin.
func EdgeSearches(q *plan.Query, est Estimator, maxvl int, joins []plan.JoinEdge, switchAt int) []float64 {
	factRows := float64(est.Cat.MustTable(q.Fact).Rows)
	factParts := partitions(factRows, maxvl)

	out := make([]float64, len(joins))
	intermediate := factRows * est.ConjunctionSelectivity(q.FactPreds)
	for i, j := range joins[:switchAt] {
		out[i] = est.FilteredDimRows(q, j.Dim) * factParts
		intermediate *= est.JoinFraction(q, j.Dim)
	}
	for i, j := range joins[switchAt:] {
		dimRows := est.FilteredDimRows(q, j.Dim)
		out[switchAt+i] = intermediate * partitions(dimRows, maxvl)
		intermediate *= est.JoinFraction(q, j.Dim)
	}
	return out
}

// EstimateGroups predicts the number of result groups: the product of the
// group columns' distinct counts, capped by the fact cardinality.
func EstimateGroups(q *plan.Query, cat *stats.Catalog) int {
	g, _ := cat.GroupCardinality(q.Fact, q.GroupBy)
	return g
}

// placeCtx carries the shared cardinality estimates one placement search
// needs: the per-edge search counts, survivor estimates, and column counts
// every candidate placement re-prices.
type placeCtx struct {
	p     *plan.Physical
	cat   *stats.Catalog
	est   Estimator
	m     CostModel
	maxvl int

	factRows     float64
	factParts    float64
	matched      float64 // fact rows surviving filter + all joins
	groups       float64
	edgeSearches []float64
	dimSurvivors map[string]float64
	factCols     int // distinct fact columns the sweep touches
	aggInputCols int // aggregate input columns (SumMul/SumSub count two)
	tailCols     int // columns a device-crossing before aggregation ships

	// Estimate provenance, stamped onto the placed ops by annotate.
	factSrc   stats.Source            // fact-predicate conjunction
	dimSrc    map[string]stats.Source // per-dimension conjunction
	groupsSrc stats.Source            // group-cardinality product
	tailSrc   string                  // non-empty overrides the tail ops' source ("observed")
}

func newPlaceCtx(p *plan.Physical, cat *stats.Catalog, maxvl int, m CostModel) *placeCtx {
	q := p.Query
	est := Estimator{Cat: cat, Fixed: m.FixedEstimates}
	c := &placeCtx{
		p: p, cat: cat, est: est, m: m.withDefaults(), maxvl: maxvl,
		dimSurvivors: make(map[string]float64, len(p.Joins)),
		dimSrc:       make(map[string]stats.Source, len(p.Joins)),
	}
	c.factRows = float64(cat.MustTable(q.Fact).Rows)
	c.factParts = partitions(c.factRows, maxvl)
	c.edgeSearches = EdgeSearches(q, est, maxvl, p.Joins, p.Switch)
	var factSel float64
	factSel, c.factSrc = est.ConjunctionSource(q.FactPreds)
	c.matched = c.factRows * factSel
	for _, j := range p.Joins {
		c.dimSurvivors[j.Dim] = est.FilteredDimRows(q, j.Dim)
		_, c.dimSrc[j.Dim] = est.ConjunctionSource(q.DimPreds[j.Dim])
		c.matched *= est.JoinFraction(q, j.Dim)
	}
	var groups int
	groups, c.groupsSrc = cat.GroupCardinality(q.Fact, q.GroupBy)
	c.groups = float64(groups)
	if est.Fixed {
		// The fixed-constant model consults no statistics: every estimate it
		// produces is an assumption, whatever the catalog knows.
		c.factSrc, c.groupsSrc = stats.SourceAssumed, stats.SourceAssumed
		for d := range c.dimSrc {
			c.dimSrc[d] = stats.SourceAssumed
		}
	}

	cols := make(map[string]struct{})
	for _, pr := range q.FactPreds {
		cols[pr.Column] = struct{}{}
	}
	for _, j := range q.Joins {
		cols[j.FactFK] = struct{}{}
	}
	for _, a := range q.Aggs {
		c.aggInputCols++
		if a.Kind != plan.AggCount {
			cols[a.A] = struct{}{}
		}
		if a.Kind == plan.AggSumMul || a.Kind == plan.AggSumSub {
			cols[a.B] = struct{}{}
			c.aggInputCols++
		}
	}
	for _, g := range q.GroupBy {
		if g.Table == q.Fact {
			cols[g.Column] = struct{}{}
		}
	}
	c.factCols = len(cols)
	c.tailCols = c.aggInputCols + len(q.GroupBy)
	if c.tailCols == 0 {
		c.tailCols = 1
	}
	return c
}

// dimBuildCost prices filtering one dimension and compacting its
// qualifying keys and attributes on a device.
func (c *placeCtx) dimBuildCost(e plan.JoinEdge, dev plan.Device) float64 {
	q := c.p.Query
	preds := q.DimPreds[e.Dim]
	dimRows := float64(c.cat.MustTable(e.Dim).Rows)
	survivors := c.dimSurvivors[e.Dim]
	outBytes := 4 * survivors * float64(1+len(e.NeedAttrs))
	if dev == plan.DeviceCAPE {
		if len(preds) == 0 {
			return 8 + 4*survivors // key/attr grouping scalars
		}
		dimParts := partitions(dimRows, c.maxvl)
		scanBytes := 4 * dimRows * float64(len(preds)+1+len(e.NeedAttrs))
		return scanBytes/c.m.CAPEStreamBytesPerCycle +
			c.m.SearchCycles*dimParts*float64(len(preds)) +
			3*survivors + outBytes/c.m.CAPEStreamBytesPerCycle
	}
	if len(preds) == 0 {
		return 1 + survivors // collection bookkeeping
	}
	scanBytes := 4 * dimRows * float64(len(preds))
	return c.m.CPUScanCyclesPerRow*dimRows*float64(len(preds)) +
		scanBytes/c.m.CPUStreamBytesPerCycle + survivors
}

// joinProbeCost prices one join edge on a device. CAPE prices the Figure-5
// search count; the CPU prices hash build plus probe (one probe pass per
// needed attribute re-uses the pattern, the paper's optimized baseline).
func (c *placeCtx) joinProbeCost(i int, e plan.JoinEdge, dev plan.Device) float64 {
	if dev == plan.DeviceCAPE {
		return c.m.SearchCycles * c.edgeSearches[i]
	}
	survivors := c.dimSurvivors[e.Dim]
	passes := float64(len(e.NeedAttrs))
	if passes == 0 {
		passes = 1
	}
	return c.m.CPUHashCyclesPerKey * (survivors + c.factRows*passes)
}

// scanCost prices streaming the fact sweep's columns into the device.
func (c *placeCtx) scanCost(dev plan.Device) float64 {
	bytes := 4 * c.factRows * float64(c.factCols)
	if dev == plan.DeviceCAPE {
		return bytes / c.m.CAPEStreamBytesPerCycle
	}
	return bytes / c.m.CPUStreamBytesPerCycle
}

// filterCost prices the fact selections.
func (c *placeCtx) filterCost(dev plan.Device) float64 {
	n := float64(len(c.p.Query.FactPreds))
	if dev == plan.DeviceCAPE {
		return c.m.SearchCycles * c.factParts * n
	}
	return c.m.CPUScanCyclesPerRow * c.factRows * n
}

// aggregateCost prices the aggregation tail: Algorithm 2's per-group loop
// per partition on CAPE (the Figure-12 crossover — group count is the CAPE
// killer) versus per-row hash aggregation on the CPU.
func (c *placeCtx) aggregateCost(dev plan.Device) float64 {
	q := c.p.Query
	naggs := float64(len(q.Aggs))
	if dev == plan.DeviceCAPE {
		if len(q.GroupBy) == 0 {
			return c.factParts * naggs * c.m.CAPEReduceCycles
		}
		perPart := c.groups
		if mp := c.matched / c.factParts; mp < perPart {
			perPart = mp
		}
		if perPart < 1 {
			perPart = 1
		}
		return c.factParts * perPart * (c.m.CAPEGroupLoopCycles + naggs*c.m.CAPEReduceCycles)
	}
	bytes := 4 * c.factRows * float64(c.tailCols)
	if len(q.GroupBy) == 0 {
		return 0.4*c.matched + bytes/c.m.CPUStreamBytesPerCycle
	}
	return c.matched*(c.m.CPUHashCyclesPerKey+c.m.CPUAggUpdateCyclesPerRow) +
		bytes/c.m.CPUStreamBytesPerCycle
}

// mergeCost prices folding partial group accumulators (morsel lanes and
// the device boundary).
func (c *placeCtx) mergeCost(dev plan.Device) float64 {
	if dev == plan.DeviceCAPE {
		return 12 * c.groups
	}
	return (c.m.CPUHashCyclesPerKey + c.m.CPUAggUpdateCyclesPerRow) * c.groups
}

// orderLimitCost prices the final sort on the result relation.
func (c *placeCtx) orderLimitCost() float64 {
	g := c.groups
	if g < 2 {
		return 2
	}
	return 2 * g * math.Log2(g)
}

// xferCost prices one CAPE<->CPU crossing carrying the given payload.
func (c *placeCtx) xferCost(bytes float64) float64 {
	return c.m.XferFixedCycles + bytes/c.m.XferBytesPerCycle
}

// xferAggCost prices the pre-aggregation crossing. Materializing pays the
// full wire cost. Streaming double-buffers: each of the B fact batches
// ships ~1/B of the payload, and every interior batch's transfer hides
// under the next batch's fact-stage compute — only the drain edge plus the
// un-hidden excess stays on the critical path:
//
//	xfer = fixed + P - min(P, C_fact)·(B-1)/B
//
// where P is the raw payload cycles and C_fact the fact stage's compute
// estimate (scan + filter + probes).
func (c *placeCtx) xferAggCost(bytes, factCompute float64) float64 {
	raw := bytes / c.m.XferBytesPerCycle
	if !c.m.Streaming || c.factParts <= 1 {
		return c.m.XferFixedCycles + raw
	}
	hidden := raw
	if factCompute < hidden {
		hidden = factCompute
	}
	return c.m.XferFixedCycles + raw - hidden*(c.factParts-1)/c.factParts
}

// srcName renders a source for op stamping; tailSrc ("observed", set by
// ReplaceTail) overrides the tail ops' provenance.
func (c *placeCtx) srcName(s stats.Source) string { return s.String() }

func (c *placeCtx) tailSrcName(s stats.Source) string {
	if c.tailSrc != "" {
		return c.tailSrc
	}
	return s.String()
}

// annotate fills the devices and per-operator cost annotations of a
// compiled pipeline for one candidate placement and returns its total cost.
func (c *placeCtx) annotate(pp *plan.PlacedPlan, factDev, aggDev plan.Device, dimDev map[string]plan.Device) int64 {
	q := c.p.Query
	pp.Place(factDev, aggDev, dimDev)
	ji := 0
	var factEst float64 // fact-stage compute, accumulated in op order
	scanSrc := stats.SourceHistogram // table row counts are always collected
	if c.est.Fixed {
		scanSrc = stats.SourceAssumed
	}
	for i := range pp.Ops {
		op := &pp.Ops[i]
		op.EstCycles, op.EstRows, op.XferCycles = 0, 0, 0
		switch op.Kind {
		case plan.OpDimBuild:
			e := *q.JoinFor(op.Dim)
			op.EstRows = int64(math.Round(c.dimSurvivors[op.Dim]))
			op.EstCycles = int64(math.Round(c.dimBuildCost(e, op.Device)))
			op.EstSource = c.srcName(c.dimSrc[op.Dim])
			if op.Device != factDev {
				bytes := 4 * c.dimSurvivors[op.Dim] * float64(1+len(e.NeedAttrs))
				op.XferCycles = int64(math.Round(c.xferCost(bytes)))
			}
		case plan.OpScan:
			op.EstRows = int64(c.factRows)
			op.EstCycles = int64(math.Round(c.scanCost(op.Device)))
			op.EstSource = c.srcName(scanSrc)
			factEst += float64(op.EstCycles)
		case plan.OpFilter:
			op.EstRows = int64(math.Round(c.factRows * c.est.ConjunctionSelectivity(q.FactPreds)))
			op.EstCycles = int64(math.Round(c.filterCost(op.Device)))
			op.EstSource = c.srcName(c.factSrc)
			factEst += float64(op.EstCycles)
		case plan.OpJoinProbe:
			e := c.p.Joins[ji]
			op.EstRows = int64(math.Round(c.edgeSearches[ji]))
			op.EstCycles = int64(math.Round(c.joinProbeCost(ji, e, op.Device)))
			op.EstSource = c.srcName(c.dimSrc[e.Dim])
			factEst += float64(op.EstCycles)
			ji++
		case plan.OpAggregate:
			op.EstRows = int64(c.groups)
			op.EstCycles = int64(math.Round(c.aggregateCost(op.Device)))
			op.EstSource = c.tailSrcName(c.groupsSrc)
			if op.Device != factDev {
				bytes := 4 * c.matched * float64(c.tailCols)
				op.XferCycles = int64(math.Round(c.xferAggCost(bytes, factEst)))
			}
		case plan.OpMerge:
			op.EstRows = int64(c.groups)
			op.EstCycles = int64(math.Round(c.mergeCost(op.Device)))
			op.EstSource = c.tailSrcName(c.groupsSrc)
		case plan.OpOrderLimit:
			op.EstRows = int64(c.groups)
			op.EstCycles = int64(math.Round(c.orderLimitCost()))
			op.EstSource = c.tailSrcName(c.groupsSrc)
		}
	}
	pp.EstSurvivors = int64(math.Round(c.matched))
	pp.EstGroups = int64(c.groups)
	return pp.EstCycles()
}

// hasGroupedSumMul reports the one shape CAPE's aggregation kernel rejects:
// SUM(a*b) under GROUP BY needs bit-serial vv arithmetic in GP layout,
// which cannot coexist with the CAM-mode group searches (outside SSB's
// shape; Castle panics). Placement forces such tails onto the CPU.
func hasGroupedSumMul(q *plan.Query) bool {
	if len(q.GroupBy) == 0 {
		return false
	}
	for _, a := range q.Aggs {
		if a.Kind == plan.AggSumMul {
			return true
		}
	}
	return false
}

// PlacePlan assigns a device to every operator of a physical plan under the
// default cost model.
func PlacePlan(p *plan.Physical, cat *stats.Catalog, maxvl int) *plan.PlacedPlan {
	return PlacePlanWith(p, cat, maxvl, DefaultCostModel())
}

// PlacePlanStreaming places under the default cost model with the
// double-buffered transfer term (CostModel.Streaming): interior batch
// transfers hide under compute, so mixed placements price crossings
// cheaper and flip sooner than the materializing search would.
func PlacePlanStreaming(p *plan.Physical, cat *stats.Catalog, maxvl int) *plan.PlacedPlan {
	m := DefaultCostModel()
	m.Streaming = true
	return PlacePlanWith(p, cat, maxvl, m)
}

// PlacePlanWith enumerates every placement the executors support — the
// fused fact stage on one device, the aggregation tail on one device, each
// dimension build on either side — prices each candidate with the
// per-operator costs plus transfer charges, and returns the annotated
// minimum. Ties break toward fewer device crossings, then toward CAPE.
//
// The enumeration is tiny: 2 (fact) x 2 (agg) x 2^dims <= 64 candidates
// for SSB's at-most-four joins.
func PlacePlanWith(p *plan.Physical, cat *stats.Catalog, maxvl int, m CostModel) *plan.PlacedPlan {
	c := newPlaceCtx(p, cat, maxvl, m)
	q := p.Query

	aggDevs := []plan.Device{plan.DeviceCAPE, plan.DeviceCPU}
	if hasGroupedSumMul(q) {
		aggDevs = []plan.Device{plan.DeviceCPU}
	}

	best := plan.Compile(p, plan.DeviceCAPE)
	bestCost := int64(math.MaxInt64)
	bestCross := 0
	bestFact := plan.DeviceCAPE
	// comboBest tracks the cheapest candidate per (fact, agg) device
	// assignment, so the winner can carry the runner-up's estimate
	// (AltEstCycles) — the "would the placement have flipped?" baseline.
	type combo struct{ fact, agg plan.Device }
	comboBest := make(map[combo]int64, 4)
	cand := plan.Compile(p, plan.DeviceCAPE)
	for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
		for _, aggDev := range aggDevs {
			for bits := 0; bits < 1<<len(p.Joins); bits++ {
				dimDev := make(map[string]plan.Device, len(p.Joins))
				for di, e := range p.Joins {
					if bits&(1<<di) != 0 {
						dimDev[e.Dim] = otherDevice(factDev)
					} else {
						dimDev[e.Dim] = factDev
					}
				}
				cost := c.annotate(cand, factDev, aggDev, dimDev)
				k := combo{factDev, aggDev}
				if cur, ok := comboBest[k]; !ok || cost < cur {
					comboBest[k] = cost
				}
				cross := cand.Crossings()
				better := cost < bestCost ||
					(cost == bestCost && cross < bestCross) ||
					(cost == bestCost && cross == bestCross &&
						factDev == plan.DeviceCAPE && bestFact != plan.DeviceCAPE)
				if better {
					best, cand = cand, best
					bestCost, bestCross, bestFact = cost, cross, factDev
					cand.Phys = p // reuse the swapped-out pipeline as scratch
				}
			}
		}
	}
	winner := combo{best.FactDevice(), best.AggDevice()}
	alt := int64(math.MaxInt64)
	for k, cost := range comboBest {
		if k != winner && cost < alt {
			alt = cost
		}
	}
	if alt < int64(math.MaxInt64) {
		best.AltEstCycles = alt
		best.AltFeasible = true
	}
	return best
}

func otherDevice(d plan.Device) plan.Device {
	if d == plan.DeviceCAPE {
		return plan.DeviceCPU
	}
	return plan.DeviceCAPE
}
