package optimizer

import (
	"math"
	"testing"

	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/stats"
	"castle/internal/storage"
)

func ssbEnv(t *testing.T) (*storage.Database, *stats.Catalog) {
	t.Helper()
	db := ssb.Generate(ssb.Config{SF: 0.01, Seed: 20260704})
	return db, stats.Collect(db)
}

func bindSQL(t *testing.T, db *storage.Database, text string) *plan.Query {
	t.Helper()
	stmt, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := plan.Bind(stmt, db)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return q
}

// TestEdgeSearchesSumMatchesCost pins the per-edge decomposition against the
// whole-query Figure-5 cost: for every SSB query and every enumerated
// candidate plan, the per-edge search terms must sum to Cost exactly.
func TestEdgeSearchesSumMatchesCost(t *testing.T) {
	db, cat := ssbEnv(t)
	est := Estimator{Cat: cat}
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		for _, cand := range Enumerate(q, cat, 32768) {
			terms := EdgeSearches(q, est, 32768, cand.Joins, cand.SwitchAt)
			if len(terms) != len(cand.Joins) {
				t.Fatalf("%s: %d edges, %d terms", qq.Flight, len(cand.Joins), len(terms))
			}
			var sum float64
			for _, s := range terms {
				sum += s
			}
			if got, want := int64(math.Round(sum)), cand.Searches; got != want {
				t.Errorf("%s joins=%v switch=%d: edge terms sum to %d, Cost says %d",
					qq.Flight, cand.Joins, cand.SwitchAt, got, want)
			}
		}
	}
}

// TestUniformCAPEJoinCostsMatchWholeQueryCost: on an all-CAPE placement the
// join-probe operators' cycle annotations must reproduce the whole-query
// optimizer cost (searches x per-search cycles), up to one rounding unit
// per edge — the single-device sanity check for the decomposed model.
func TestUniformCAPEJoinCostsMatchWholeQueryCost(t *testing.T) {
	db, cat := ssbEnv(t)
	m := DefaultCostModel()
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, 32768)
		if err != nil {
			t.Fatal(err)
		}
		c := newPlaceCtx(p, cat, 32768, m)
		pp := plan.Compile(p, plan.DeviceCAPE)
		c.annotate(pp, plan.DeviceCAPE, plan.DeviceCAPE, nil)
		if dev, uniform := pp.Uniform(); !uniform || dev != plan.DeviceCAPE {
			t.Fatalf("%s: placement not uniform CAPE", qq.Flight)
		}
		var joinCycles int64
		for _, op := range pp.Ops {
			if op.XferCycles != 0 {
				t.Errorf("%s: uniform placement charges transfer on %s", qq.Flight, op.Kind)
			}
			if op.Kind == plan.OpJoinProbe {
				joinCycles += op.EstCycles
			}
		}
		whole := int64(math.Round(m.SearchCycles * float64(Cost(q, Estimator{Cat: cat}, 32768, p.Joins, p.Switch))))
		if diff := joinCycles - whole; diff > int64(len(p.Joins)) || diff < -int64(len(p.Joins)) {
			t.Errorf("%s: join operators cost %d cycles, whole-query model says %d",
				qq.Flight, joinCycles, whole)
		}
	}
}

// TestPingPongPlacementLoses: the transfer charge must make degenerate
// placements — every dimension built opposite the fact stage, aggregation
// bounced to the other device — cost strictly more than the chosen one.
func TestPingPongPlacementLoses(t *testing.T) {
	db, cat := ssbEnv(t)
	m := DefaultCostModel()
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, 32768)
		if err != nil {
			t.Fatal(err)
		}
		best := PlacePlanWith(p, cat, 32768, m)
		c := newPlaceCtx(p, cat, 32768, m)
		for _, factDev := range []plan.Device{plan.DeviceCAPE, plan.DeviceCPU} {
			dimDev := make(map[string]plan.Device, len(p.Joins))
			for _, e := range p.Joins {
				dimDev[e.Dim] = otherDevice(factDev)
			}
			pp := plan.Compile(p, factDev)
			cost := c.annotate(pp, factDev, otherDevice(factDev), dimDev)
			if cost <= best.EstCycles() {
				t.Errorf("%s: ping-pong placement (fact=%s) costs %d, beats chosen %d",
					qq.Flight, factDev, cost, best.EstCycles())
			}
			if pp.Crossings() != len(p.Joins)+1 {
				t.Fatalf("%s: ping-pong placement should cross %d times, got %d",
					qq.Flight, len(p.Joins)+1, pp.Crossings())
			}
		}
	}
}

// TestPlacementRespectsFusedStages: every chosen placement must satisfy the
// executor's structural constraints (fused fact stage, single-device tail).
func TestPlacementRespectsFusedStages(t *testing.T) {
	db, cat := ssbEnv(t)
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, 32768)
		if err != nil {
			t.Fatal(err)
		}
		pp := PlacePlan(p, cat, 32768)
		if err := pp.Validate(); err != nil {
			t.Errorf("%s: %v", qq.Flight, err)
		}
	}
}

// TestSSBChoosesMixedPlacement pins the tentpole behaviour: under the
// default cost model at least one SSB query must split across devices —
// the paper's hybrid case (selective fact pipeline on CAPE feeding a
// high-cardinality aggregation on the CPU), and the no-group flights must
// stay all-CAPE.
func TestSSBChoosesMixedPlacement(t *testing.T) {
	db, cat := ssbEnv(t)
	mixed := 0
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, 32768)
		if err != nil {
			t.Fatal(err)
		}
		pp := PlacePlan(p, cat, 32768)
		if pp.Mixed() {
			mixed++
			if pp.FactDevice() != plan.DeviceCAPE {
				t.Errorf("%s: mixed placement put the fact stage on %s; the paper's hybrid keeps selective fact work on CAPE",
					qq.Flight, pp.FactDevice())
			}
		}
		if qq.Num <= 3 { // Q1.x: grand aggregate, no grouping pressure
			if dev, uniform := pp.Uniform(); !uniform || dev != plan.DeviceCAPE {
				t.Errorf("%s: expected all-CAPE, got %s", qq.Flight, pp.String())
			}
		}
	}
	if mixed == 0 {
		t.Error("no SSB query chose a mixed placement under the default cost model")
	}
}

// TestGroupedSumMulForcedToCPU: SUM(a*b) under GROUP BY is the shape the
// CAPE aggregation kernel rejects; placement must force its tail to the
// CPU regardless of how cheap CAPE aggregation would price.
func TestGroupedSumMulForcedToCPU(t *testing.T) {
	db, cat := ssbEnv(t)
	q := bindSQL(t, db, `
		SELECT d_year, SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 1993
		GROUP BY d_year`)
	p, err := Optimize(q, cat, 32768)
	if err != nil {
		t.Fatal(err)
	}
	// Even with a free CAPE group loop the tail must stay off CAPE.
	m := DefaultCostModel()
	m.CAPEGroupLoopCycles = 0.001
	m.CAPEReduceCycles = 0.001
	pp := PlacePlanWith(p, cat, 32768, m)
	if pp.AggDevice() != plan.DeviceCPU {
		t.Fatalf("grouped SUM(a*b) placed its tail on %s; the CAPE kernel rejects that shape", pp.AggDevice())
	}
}

// TestStreamingXferOverlapFormula pins the double-buffered crossing price:
// with B fact batches and ample producer compute, only the fixed penalty
// plus the drain edge (1/B of the payload) stays on the critical path; with
// a single batch (or streaming off) the full wire cost is charged.
func TestStreamingXferOverlapFormula(t *testing.T) {
	c := &placeCtx{m: DefaultCostModel().withDefaults(), factParts: 4}
	const bytes = 64000.0
	raw := bytes / c.m.XferBytesPerCycle

	mat := c.xferAggCost(bytes, 1e12)
	if want := c.m.XferFixedCycles + raw; mat != want {
		t.Fatalf("materializing xfer = %.1f, want fixed+raw = %.1f", mat, want)
	}

	c.m.Streaming = true
	str := c.xferAggCost(bytes, 1e12)
	if want := c.m.XferFixedCycles + raw/4; math.Abs(str-want) > 1e-6 {
		t.Errorf("streaming xfer = %.1f, want fixed + raw/B = %.1f", str, want)
	}
	if str >= mat {
		t.Errorf("streaming xfer %.1f not cheaper than materializing %.1f", str, mat)
	}

	// Compute-bound producer: only factCompute·(B-1)/B hides.
	bound := c.xferAggCost(bytes, raw/2)
	if want := c.m.XferFixedCycles + raw - (raw/2)*3/4; math.Abs(bound-want) > 1e-6 {
		t.Errorf("compute-bound xfer = %.1f, want %.1f", bound, want)
	}

	// One batch: fill + drain only, nothing hides.
	c.factParts = 1
	if got := c.xferAggCost(bytes, 1e12); got != mat {
		t.Errorf("single-batch streaming xfer = %.1f, want full wire cost %.1f", got, mat)
	}
}

// TestPlacePlanStreamingNeverCostsMore checks dominance: streaming prices
// every candidate at or below its materializing price, so the chosen
// streaming placement's estimate can never exceed the materializing one.
func TestPlacePlanStreamingNeverCostsMore(t *testing.T) {
	db, cat := ssbEnv(t)
	maxvl := 8192
	for _, qq := range ssb.Queries() {
		q := bindSQL(t, db, qq.SQL)
		p, err := Optimize(q, cat, maxvl)
		if err != nil {
			t.Fatalf("%s: %v", qq.Flight, err)
		}
		mat := PlacePlan(p, cat, maxvl)
		str := PlacePlanStreaming(p, cat, maxvl)
		if str.EstCycles() > mat.EstCycles() {
			t.Errorf("%s: streaming placement estimate %d exceeds materializing %d",
				qq.Flight, str.EstCycles(), mat.EstCycles())
		}
	}
}
