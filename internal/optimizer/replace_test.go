package optimizer

import (
	"testing"

	"castle/internal/plan"
	"castle/internal/ssb"
)

// TestReplaceTailKeepsDevicesOnAccurateEstimate: when the observed survivor
// count matches what the original search priced, re-placement keeps the tail
// wherever losing the cap cannot help the other side. An observation is
// ground truth, so ReplaceTail caps the group estimate at the observed
// survivor count — an inference the static search refuses to stack on two
// estimates — which can only make CAPE's per-group tail cheaper. Scalar
// queries (no grouping, cap is a no-op) and CAPE-tailed queries must
// therefore keep their devices exactly; CPU-tailed grouped queries are
// allowed to flip toward CAPE (see TestReplaceTailFlipsOnCollapsedSurvivors)
// but the decision must be deterministic and stable once re-placed.
func TestReplaceTailKeepsDevicesOnAccurateEstimate(t *testing.T) {
	m := DefaultCostModel()
	for num := 1; num <= 13; num++ {
		p, cat := ssbPhysical(t, num)
		pp := PlacePlan(p, cat, 32768)
		np, changed := ReplaceTail(pp, cat, 32768, m, pp.EstSurvivors)
		flight := ssb.Queries()[num-1].Flight
		scalar := len(p.Query.GroupBy) == 0
		if (scalar || pp.AggDevice() == plan.DeviceCAPE) &&
			(changed || np.AggDevice() != pp.AggDevice()) {
			t.Errorf("%s: accurate observation moved the tail %s -> %s",
				flight, pp.AggDevice(), np.AggDevice())
		}
		// Re-placing the re-placed plan with the same observation is a fixed
		// point: the decision depends on the observation, not the incumbent.
		np2, changed2 := ReplaceTail(np, cat, 32768, m, pp.EstSurvivors)
		if changed2 || np2.AggDevice() != np.AggDevice() {
			t.Errorf("%s: re-placement not a fixed point (%s -> %s)",
				flight, np.AggDevice(), np2.AggDevice())
		}
	}
}

// TestReplaceTailFlipsOnCollapsedSurvivors: an SSB query whose original
// placement sent the aggregation tail to the CPU (high estimated group
// cardinality) must flip the tail back to CAPE when the observation says
// almost nothing survived — a near-empty tail is exactly where CAPE's
// per-group loop wins. The fact and dimension devices stay pinned: only the
// tail is unexecuted.
func TestReplaceTailFlipsOnCollapsedSurvivors(t *testing.T) {
	m := DefaultCostModel()
	flipped := false
	for num := 1; num <= 13; num++ {
		p, cat := ssbPhysical(t, num)
		pp := PlacePlan(p, cat, 32768)
		if pp.AggDevice() != plan.DeviceCPU || hasGroupedSumMul(p.Query) {
			continue
		}
		np, changed := ReplaceTail(pp, cat, 32768, m, 1)
		if np.FactDevice() != pp.FactDevice() {
			t.Fatalf("query %d: re-placement moved the executed fact stage %s -> %s",
				num, pp.FactDevice(), np.FactDevice())
		}
		for _, op := range np.Ops {
			if op.Kind == plan.OpDimBuild && op.Device != pp.DimDevice(op.Dim) {
				t.Fatalf("query %d: re-placement moved dim %s", num, op.Dim)
			}
		}
		if changed && np.AggDevice() == plan.DeviceCAPE {
			flipped = true
		}
	}
	if !flipped {
		t.Error("no CPU-tailed SSB query flipped to CAPE on a collapsed observation")
	}
}

// TestReplaceTailObservedProvenance: the re-placed plan's tail rows carry
// EstSource "observed" while the already-executed fact stage keeps its
// histogram provenance — EXPLAIN ANALYZE's est-src column tells the two
// halves apart.
func TestReplaceTailObservedProvenance(t *testing.T) {
	p, cat := ssbPhysical(t, 4) // Q2.1: grouped, three joins
	pp := PlacePlan(p, cat, 32768)
	np, _ := ReplaceTail(pp, cat, 32768, DefaultCostModel(), 17)
	for _, op := range np.Ops {
		switch op.Kind {
		case plan.OpAggregate, plan.OpMerge, plan.OpOrderLimit:
			if op.EstSource != "observed" {
				t.Errorf("tail op %s source %q, want observed", op.Kind, op.EstSource)
			}
		case plan.OpScan, plan.OpFilter, plan.OpJoinProbe:
			if op.EstSource != "histogram" {
				t.Errorf("fact op %s source %q, want histogram", op.Kind, op.EstSource)
			}
		}
	}
	if np.EstSurvivors != 17 {
		t.Errorf("re-placed plan EstSurvivors = %d, want the observation 17", np.EstSurvivors)
	}
}

// TestReplaceTailGroupedSumMulStaysOnCPU: the CAPE aggregation kernel
// rejects grouped SUM(a*b), so no observation — however favorable to CAPE —
// may move that tail. With a single candidate there is also no runner-up:
// AltFeasible must stay false so would-flip telemetry skips the plan.
func TestReplaceTailGroupedSumMulStaysOnCPU(t *testing.T) {
	db, cat := ssbEnv(t)
	q := bindSQL(t, db, `
		SELECT d_year, SUM(lo_extendedprice * lo_discount) AS revenue
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND d_year = 1993
		GROUP BY d_year`)
	p, err := Optimize(q, cat, 32768)
	if err != nil {
		t.Fatal(err)
	}
	pp := PlacePlan(p, cat, 32768)
	for _, observed := range []int64{0, 1, 1 << 40} {
		np, changed := ReplaceTail(pp, cat, 32768, DefaultCostModel(), observed)
		if changed || np.AggDevice() != plan.DeviceCPU {
			t.Fatalf("observed=%d moved a grouped SUM(a*b) tail to %s", observed, np.AggDevice())
		}
		if np.AltFeasible || np.AltEstCycles != 0 {
			t.Fatalf("observed=%d: single-candidate re-placement reported a runner-up (%d)",
				observed, np.AltEstCycles)
		}
	}
}

// TestReplaceTailRunnerUp: with both tail devices in play the re-placed plan
// reports the loser as AltEstCycles, never cheaper than the winner.
func TestReplaceTailRunnerUp(t *testing.T) {
	p, cat := ssbPhysical(t, 4)
	pp := PlacePlan(p, cat, 32768)
	for _, observed := range []int64{0, 100, pp.EstSurvivors, 1 << 30} {
		np, _ := ReplaceTail(pp, cat, 32768, DefaultCostModel(), observed)
		if !np.AltFeasible || np.AltEstCycles <= 0 {
			t.Fatalf("observed=%d: two-candidate re-placement has no runner-up", observed)
		}
		if np.AltEstCycles < np.EstCycles() {
			t.Fatalf("observed=%d: runner-up %d beats winner %d",
				observed, np.AltEstCycles, np.EstCycles())
		}
	}
}

// TestReplaceTailClampsNegativeObservation: a negative survivor count (a
// caller bug) clamps to zero instead of poisoning the cost model, and the
// group estimate keeps its ≥1 floor (the empty grouping still emits a row).
func TestReplaceTailClampsNegativeObservation(t *testing.T) {
	p, cat := ssbPhysical(t, 4)
	pp := PlacePlan(p, cat, 32768)
	np, _ := ReplaceTail(pp, cat, 32768, DefaultCostModel(), -5)
	if np.EstSurvivors != 0 {
		t.Fatalf("negative observation produced EstSurvivors %d, want 0", np.EstSurvivors)
	}
	if np.EstGroups < 1 {
		t.Fatalf("group estimate collapsed to %d, want >= 1", np.EstGroups)
	}
}
