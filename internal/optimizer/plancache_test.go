package optimizer

import (
	"fmt"
	"sync"
	"testing"

	"castle/internal/plan"
)

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	p1 := CachedPlan{Bound: &plan.Query{Fact: "a"}}
	p2 := CachedPlan{Bound: &plan.Query{Fact: "b"}}
	p3 := CachedPlan{Bound: &plan.Query{Fact: "c"}}
	c.Put("k1", 1, p1)
	c.Put("k2", 1, p2)
	if _, ok := c.Get("k1", 1); !ok {
		t.Fatal("k1 missing before eviction")
	}
	// k2 is now least recently used; inserting k3 must evict it.
	c.Put("k3", 1, p3)
	if _, ok := c.Get("k2", 1); ok {
		t.Fatal("k2 survived eviction")
	}
	if got, ok := c.Get("k1", 1); !ok || got.Bound.Fact != "a" {
		t.Fatalf("k1 lost or wrong: %v %v", got, ok)
	}
	if got, ok := c.Get("k3", 1); !ok || got.Bound.Fact != "c" {
		t.Fatalf("k3 lost or wrong: %v %v", got, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPlanCacheVersionFlush(t *testing.T) {
	c := NewPlanCache(8)
	c.Put("k", 1, CachedPlan{Bound: &plan.Query{Fact: "a"}})
	if _, ok := c.Get("k", 1); !ok {
		t.Fatal("warm get missed")
	}
	// A newer database version stales every cached plan.
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("stale plan served after version bump")
	}
	st := c.Stats()
	if st.Flushes != 1 || st.Entries != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

// TestTokenFoldsStatsEpoch: a statistics refresh alone must move the cache
// token — plans are priced from histograms, so stale statistics stale every
// cached placement even when the schema version is unchanged.
func TestTokenFoldsStatsEpoch(t *testing.T) {
	if Token(1, 0) == Token(1, 1) {
		t.Fatal("stats epoch does not move the token")
	}
	if Token(1, 0) == Token(2, 0) {
		t.Fatal("version does not move the token")
	}
	// No collisions across a small (version, epoch) grid — the mixer must
	// keep nearby pairs apart.
	seen := make(map[uint64][2]uint64)
	for v := uint64(0); v < 32; v++ {
		for e := uint64(0); e < 32; e++ {
			tok := Token(v, e)
			if prev, dup := seen[tok]; dup {
				t.Fatalf("Token(%d,%d) collides with Token(%d,%d)", v, e, prev[0], prev[1])
			}
			seen[tok] = [2]uint64{v, e}
		}
	}
}

// TestPlanCacheStatsEpochFlush: a cache keyed by Token must flush when only
// the statistics epoch changes.
func TestPlanCacheStatsEpochFlush(t *testing.T) {
	c := NewPlanCache(8)
	c.Put("k", Token(3, 0), CachedPlan{Bound: &plan.Query{Fact: "a"}})
	if _, ok := c.Get("k", Token(3, 0)); !ok {
		t.Fatal("warm get missed")
	}
	if _, ok := c.Get("k", Token(3, 1)); ok {
		t.Fatal("plan prepared against old statistics served after an epoch bump")
	}
	if st := c.Stats(); st.Flushes != 1 || st.Entries != 0 {
		t.Fatalf("stats after epoch flush: %+v", st)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				if _, ok := c.Get(key, 1); !ok {
					c.Put(key, 1, CachedPlan{Bound: &plan.Query{Fact: key}})
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 16 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}

func TestFingerprintDistinguishesInputs(t *testing.T) {
	base := Fingerprint("SELECT 1", "cape", 32768, plan.LeftDeep, false)
	same := Fingerprint("  SELECT 1  ", "cape", 32768, plan.RightDeep, false)
	if base != same {
		t.Fatal("whitespace or unforced shape fragmented the key")
	}
	for _, other := range []string{
		Fingerprint("SELECT 2", "cape", 32768, plan.LeftDeep, false),
		Fingerprint("SELECT 1", "cpu", 32768, plan.LeftDeep, false),
		Fingerprint("SELECT 1", "cape", 1024, plan.LeftDeep, false),
		Fingerprint("SELECT 1", "cape", 32768, plan.LeftDeep, true),
	} {
		if other == base {
			t.Fatalf("key collision: %q", other)
		}
	}
}
