package optimizer

import (
	"testing"
	"testing/quick"

	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/stats"
	"castle/internal/storage"
)

const fig5MAXVL = 32768

// fig5DB reconstructs the worked example of Figure 5: a 6M-row fact joined
// with two dimensions. d1 filters down to 3K rows and the f-d1 join
// intermediate is 200K rows (join fraction 1/30 => d1 has 90K total rows);
// d2 has 20K rows, unfiltered.
func fig5DB(t *testing.T) (*plan.Query, *stats.Catalog) {
	t.Helper()
	db := storage.NewDatabase()

	const d1Rows = 90000
	d1Key := make([]uint32, d1Rows)
	d1Attr := make([]uint32, d1Rows)
	for i := range d1Key {
		d1Key[i] = uint32(i)
		d1Attr[i] = uint32(i % 30) // filter d1_attr = 0 keeps 3K rows
	}
	d1 := storage.NewTable("d1")
	d1.AddIntColumn("d1_key", d1Key)
	d1.AddIntColumn("d1_attr", d1Attr)
	db.Add(d1)

	const d2Rows = 20000
	d2Key := make([]uint32, d2Rows)
	for i := range d2Key {
		d2Key[i] = uint32(i)
	}
	d2 := storage.NewTable("d2")
	d2.AddIntColumn("d2_key", d2Key)
	db.Add(d2)

	// The fact relation only needs its cardinality for costing; keep its
	// columns tiny-valued to build fast. 6M rows.
	const fRows = 6000000
	c1 := make([]uint32, fRows)
	c2 := make([]uint32, fRows)
	rev := make([]uint32, fRows)
	for i := range c1 {
		c1[i] = uint32(i % d1Rows)
		c2[i] = uint32(i % d2Rows)
	}
	f := storage.NewTable("fact")
	f.AddIntColumn("f_c1", c1)
	f.AddIntColumn("f_c2", c2)
	f.AddIntColumn("f_rev", rev)
	db.Add(f)

	stmt, err := sql.Parse(`SELECT SUM(f_rev) FROM fact, d1, d2
		WHERE f_c1 = d1_key AND f_c2 = d2_key AND d1_attr = 0`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := plan.Bind(stmt, db)
	if err != nil {
		t.Fatal(err)
	}
	return q, stats.Collect(db)
}

// TestFig5PlanShapeCosts pins the Figure 5 ordering: left-deep ~6M searches,
// right-deep ~4M, zig-zag under 1M.
func TestFig5PlanShapeCosts(t *testing.T) {
	q, cat := fig5DB(t)
	est := Estimator{Cat: cat}

	d1 := *q.JoinFor("d1")
	d2 := *q.JoinFor("d2")
	order := []plan.JoinEdge{d1, d2}

	leftDeep := Cost(q, est, fig5MAXVL, order, 0)
	rightDeep := Cost(q, est, fig5MAXVL, order, 2)
	zigZag := Cost(q, est, fig5MAXVL, order, 1)

	if leftDeep < 6000000 || leftDeep > 6500000 {
		t.Errorf("left-deep = %d searches, want ~6.2M (Figure 5: '6M searches')", leftDeep)
	}
	if rightDeep < 4000000 || rightDeep > 4500000 {
		t.Errorf("right-deep = %d searches, want ~4.2M (Figure 5: '4M searches')", rightDeep)
	}
	if zigZag < 600000 || zigZag > 800000 {
		t.Errorf("zig-zag = %d searches, want ~750K (Figure 5: '600K searches')", zigZag)
	}
	if !(zigZag < rightDeep && rightDeep < leftDeep) {
		t.Errorf("ordering violated: zigzag=%d rightdeep=%d leftdeep=%d", zigZag, rightDeep, leftDeep)
	}
}

func TestOptimizePicksZigZagForFig5(t *testing.T) {
	q, cat := fig5DB(t)
	p, err := Optimize(q, cat, fig5MAXVL)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape() != plan.ZigZag {
		t.Fatalf("best shape = %v, want zig-zag", p.Shape())
	}
	// d1 (small filtered) must be the right-deep prefix.
	if p.Joins[0].Dim != "d1" || p.Switch != 1 {
		t.Fatalf("plan = %v", p)
	}
}

// TestRightDeepCostOrderIndependent verifies §3.4's observation: a
// right-deep plan's cost does not depend on the join order.
func TestRightDeepCostOrderIndependent(t *testing.T) {
	q, cat := fig5DB(t)
	est := Estimator{Cat: cat}
	d1 := *q.JoinFor("d1")
	d2 := *q.JoinFor("d2")
	a := Cost(q, est, fig5MAXVL, []plan.JoinEdge{d1, d2}, 2)
	b := Cost(q, est, fig5MAXVL, []plan.JoinEdge{d2, d1}, 2)
	if a != b {
		t.Fatalf("right-deep cost depends on order: %d vs %d", a, b)
	}
}

func TestBestWithShape(t *testing.T) {
	q, cat := fig5DB(t)
	for _, shape := range []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.ZigZag} {
		p, err := BestWithShape(q, cat, fig5MAXVL, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if p.Shape() != shape {
			t.Fatalf("asked %v, got %v", shape, p.Shape())
		}
	}
	best, _ := Optimize(q, cat, fig5MAXVL)
	ld, _ := BestWithShape(q, cat, fig5MAXVL, plan.LeftDeep)
	if best.EstimatedSearches > ld.EstimatedSearches {
		t.Fatal("optimal plan cannot be worse than the best left-deep plan")
	}
}

func TestEnumerateCount(t *testing.T) {
	q, cat := fig5DB(t)
	cands := Enumerate(q, cat, fig5MAXVL)
	// 2 joins: 2! orders x 3 switch points = 6 candidates.
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want 6", len(cands))
	}
	for _, c := range cands {
		if c.Searches <= 0 {
			t.Fatalf("non-positive cost: %+v", c)
		}
		if c.Shape() == plan.ZigZag && (c.SwitchAt == 0 || c.SwitchAt == len(c.Joins)) {
			t.Fatal("shape misclassified")
		}
	}
}

// Property: Optimize returns the minimum over Enumerate.
func TestQuickOptimizeIsMinimum(t *testing.T) {
	q, cat := fig5DB(t)
	best, err := Optimize(q, cat, fig5MAXVL)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Enumerate(q, cat, fig5MAXVL) {
		if c.Searches < best.EstimatedSearches {
			t.Fatalf("candidate %+v beats chosen plan (%d)", c, best.EstimatedSearches)
		}
	}
}

func TestPredSelectivities(t *testing.T) {
	db := storage.NewDatabase()
	tb := storage.NewTable("t")
	data := make([]uint32, 100)
	for i := range data {
		data[i] = uint32(i)
	}
	tb.AddIntColumn("x", data)
	db.Add(tb)
	est := Estimator{Cat: stats.Collect(db)}

	check := func(p plan.Predicate, want float64) {
		t.Helper()
		p.Table, p.Column = "t", "x"
		got := est.PredSelectivity(p)
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("selectivity(%v) = %.3f, want ~%.3f", p, got, want)
		}
	}
	check(plan.Predicate{Op: plan.PredEQ, Value: 5}, 0.01)
	check(plan.Predicate{Op: plan.PredNE, Value: 5}, 0.99)
	check(plan.Predicate{Op: plan.PredLT, Value: 50}, 0.5)
	check(plan.Predicate{Op: plan.PredLE, Value: 49}, 0.5)
	check(plan.Predicate{Op: plan.PredGT, Value: 49}, 0.5)
	check(plan.Predicate{Op: plan.PredGE, Value: 50}, 0.5)
	check(plan.Predicate{Op: plan.PredBetween, Lo: 10, Hi: 19}, 0.1)
	check(plan.Predicate{Op: plan.PredIn, Values: []uint32{1, 2, 3}}, 0.03)
	check(plan.Predicate{Never: true}, 0)
	// Unknown column: neutral selectivity.
	p := plan.Predicate{Table: "t", Column: "nope", Op: plan.PredEQ}
	if est.PredSelectivity(p) != 1 {
		t.Error("unknown column should have selectivity 1")
	}
}

// Property: selectivity estimates stay in [0,1] for arbitrary predicates.
func TestQuickSelectivityBounds(t *testing.T) {
	db := storage.NewDatabase()
	tb := storage.NewTable("t")
	tb.AddIntColumn("x", []uint32{3, 17, 99, 3, 42})
	db.Add(tb)
	est := Estimator{Cat: stats.Collect(db)}
	f := func(opRaw uint8, v, lo, hi uint32) bool {
		p := plan.Predicate{
			Table: "t", Column: "x",
			Op:    plan.PredOp(opRaw % 8),
			Value: v, Lo: lo, Hi: hi,
			Values: []uint32{v, lo},
		}
		s := est.PredSelectivity(p)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
