// Package optimizer implements Castle's AP-aware query optimizer (§3.4).
//
// CAPE inverts the cost structure of joins: data loaded into a vector
// register is implicitly indexed, so there is no build phase and the
// cheaper relation should *probe* rather than be probed. The optimizer
// therefore scores plans by the number of associative searches they perform
// (Figure 5's unit):
//
//	cost(probe P into stored R) = |P| * |Part(R)|,  Part(R) = ceil(|R|/MAXVL)
//
// and enumerates join orders together with plan shapes — left-deep,
// right-deep, and zig-zag (right-deep prefix, then a probe-direction switch
// once the intermediate result undercuts the remaining dimensions).
package optimizer

import (
	"fmt"
	"math"

	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/telemetry"
)

// Estimator derives cardinality estimates from catalog statistics. With
// Fixed set it ignores the statistics and prices every predicate with the
// classic fixed-constant (System R) selectivities instead — the "assumed"
// model the bench harness compares the histogram-driven estimates against.
type Estimator struct {
	Cat   *stats.Catalog
	Fixed bool
}

// PredSelectivity estimates the fraction of rows a predicate retains.
func (e Estimator) PredSelectivity(p plan.Predicate) float64 {
	s, _ := e.PredSelectivitySource(p)
	return s
}

// PredSelectivitySource estimates the fraction of rows a predicate retains
// and reports where the number came from.
func (e Estimator) PredSelectivitySource(p plan.Predicate) (float64, stats.Source) {
	if e.Fixed {
		return stats.FixedEstimate(p), stats.SourceAssumed
	}
	return e.Cat.Estimate(p)
}

// ConjunctionSelectivity multiplies the independent selectivities of a
// predicate list (the standard independence assumption).
func (e Estimator) ConjunctionSelectivity(preds []plan.Predicate) float64 {
	s, _ := e.ConjunctionSource(preds)
	return s
}

// ConjunctionSource is ConjunctionSelectivity with provenance: histogram
// only when every conjunct was statistics-backed.
func (e Estimator) ConjunctionSource(preds []plan.Predicate) (float64, stats.Source) {
	s, src := 1.0, stats.SourceHistogram
	for _, p := range preds {
		ps, psrc := e.PredSelectivitySource(p)
		s *= ps
		if psrc == stats.SourceAssumed {
			src = stats.SourceAssumed
		}
	}
	return s, src
}

// FilteredDimRows estimates the surviving rows of a dimension after its
// selections.
func (e Estimator) FilteredDimRows(q *plan.Query, dim string) float64 {
	rows := float64(e.Cat.MustTable(dim).Rows)
	return rows * e.ConjunctionSelectivity(q.DimPreds[dim])
}

// JoinFraction estimates the fraction of fact rows surviving the semi-join
// with a filtered dimension (uniform foreign keys over the dimension's key
// domain).
func (e Estimator) JoinFraction(q *plan.Query, dim string) float64 {
	total := float64(e.Cat.MustTable(dim).Rows)
	if total == 0 {
		return 0
	}
	f := e.FilteredDimRows(q, dim) / total
	if f > 1 {
		f = 1
	}
	return f
}

// partitions returns ceil(rows / maxvl), the Part(X) of Figure 5.
func partitions(rows float64, maxvl int) float64 {
	p := math.Ceil(rows / float64(maxvl))
	if p < 1 {
		p = 1
	}
	return p
}

// Cost computes the estimated number of searches for executing the joins in
// the given order with the given switch point (joins[0:switch] right-deep,
// joins[switch:] left-deep). Exported so experiments can reproduce the
// Figure 5 worked example.
func Cost(q *plan.Query, est Estimator, maxvl int, joins []plan.JoinEdge, switchAt int) int64 {
	factRows := float64(est.Cat.MustTable(q.Fact).Rows)
	factParts := partitions(factRows, maxvl)

	cost := 0.0
	// Right-deep segment: every filtered dimension probes all fact
	// partitions. Cost is independent of order within the segment (§3.4).
	intermediate := factRows * est.ConjunctionSelectivity(q.FactPreds)
	for _, j := range joins[:switchAt] {
		cost += est.FilteredDimRows(q, j.Dim) * factParts
		intermediate *= est.JoinFraction(q, j.Dim)
	}
	// Left-deep segment: the intermediate result probes each stored
	// (filtered) dimension in turn.
	for _, j := range joins[switchAt:] {
		dimRows := est.FilteredDimRows(q, j.Dim)
		cost += intermediate * partitions(dimRows, maxvl)
		intermediate *= est.JoinFraction(q, j.Dim)
	}
	return int64(math.Round(cost))
}

// Candidate couples a physical plan alternative with its cost.
type Candidate struct {
	Joins    []plan.JoinEdge
	SwitchAt int
	Searches int64
}

// Shape classifies the candidate like plan.Physical.
func (c Candidate) Shape() plan.Shape {
	switch {
	case c.SwitchAt == 0 && len(c.Joins) > 0:
		return plan.LeftDeep
	case c.SwitchAt == len(c.Joins):
		return plan.RightDeep
	default:
		return plan.ZigZag
	}
}

// Enumerate returns every (join order, switch point) candidate with its
// estimated search count. SSB queries join at most four dimensions, so
// exhaustive enumeration (n! * (n+1) candidates) is cheap.
func Enumerate(q *plan.Query, cat *stats.Catalog, maxvl int) []Candidate {
	est := Estimator{Cat: cat}
	var out []Candidate
	permute(q.Joins, func(order []plan.JoinEdge) {
		for sw := 0; sw <= len(order); sw++ {
			js := make([]plan.JoinEdge, len(order))
			copy(js, order)
			out = append(out, Candidate{
				Joins:    js,
				SwitchAt: sw,
				Searches: Cost(q, est, maxvl, js, sw),
			})
		}
	})
	return out
}

func permute(js []plan.JoinEdge, emit func([]plan.JoinEdge)) {
	n := len(js)
	if n == 0 {
		emit(nil)
		return
	}
	cur := make([]plan.JoinEdge, n)
	copy(cur, js)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			emit(cur)
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
}

// Optimize picks the minimum-search candidate (ties broken toward larger
// switch points, i.e. more right-deep, whose cost is robust to join-order
// estimation errors, §3.4).
func Optimize(q *plan.Query, cat *stats.Catalog, maxvl int) (*plan.Physical, error) {
	return OptimizeTraced(q, cat, maxvl, nil)
}

// OptimizeTraced is Optimize with candidate enumeration and selection
// recorded as child spans of parent (nil parent traces nothing).
func OptimizeTraced(q *plan.Query, cat *stats.Catalog, maxvl int, parent *telemetry.Span) (*plan.Physical, error) {
	spe := parent.Child("enumerate")
	cands := Enumerate(q, cat, maxvl)
	spe.SetInt("candidates", int64(len(cands)))
	spe.End()
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimizer: no candidates for query %s", q)
	}
	sps := parent.Child("select")
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Searches < best.Searches ||
			(c.Searches == best.Searches && c.SwitchAt > best.SwitchAt) {
			best = c
		}
	}
	sps.SetInt("est_searches", best.Searches)
	sps.SetStr("shape", best.Shape().String())
	sps.End()
	return &plan.Physical{
		Query:             q,
		Joins:             best.Joins,
		Switch:            best.SwitchAt,
		EstimatedSearches: best.Searches,
	}, nil
}

// BestWithShape picks the minimum-search candidate of a given shape — used
// to compare plan shapes (Figure 6's "CAPE database operators" tier forces
// the traditional left-deep shape).
func BestWithShape(q *plan.Query, cat *stats.Catalog, maxvl int, shape plan.Shape) (*plan.Physical, error) {
	return BestWithShapeTraced(q, cat, maxvl, shape, nil)
}

// BestWithShapeTraced is BestWithShape with enumeration and selection
// recorded as child spans of parent (nil parent traces nothing).
func BestWithShapeTraced(q *plan.Query, cat *stats.Catalog, maxvl int, shape plan.Shape, parent *telemetry.Span) (*plan.Physical, error) {
	spe := parent.Child("enumerate")
	cands := Enumerate(q, cat, maxvl)
	spe.SetInt("candidates", int64(len(cands)))
	spe.End()
	sps := parent.Child("select")
	defer sps.End()
	var best *Candidate
	for _, c := range cands {
		c := c
		if len(q.Joins) > 0 && c.Shape() != shape {
			continue
		}
		if best == nil || c.Searches < best.Searches {
			best = &c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no %v plan exists for query %s", shape, q)
	}
	sps.SetInt("est_searches", best.Searches)
	sps.SetStr("shape", shape.String())
	return &plan.Physical{
		Query:             q,
		Joins:             best.Joins,
		Switch:            best.SwitchAt,
		EstimatedSearches: best.Searches,
	}, nil
}
