package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is an equi-depth histogram: bucket boundaries chosen so each
// bucket covers (approximately) the same number of rows. Range selectivity
// estimates interpolate within the partially covered edge buckets, which
// handles skewed value distributions far better than the min/max uniform
// assumption.
type Histogram struct {
	// Bounds[i] is the inclusive upper bound of bucket i; bucket i covers
	// (Bounds[i-1], Bounds[i]] with bucket 0 starting at Min.
	Bounds []uint32
	// Fractions[i] is the fraction of rows in bucket i (sums to ~1).
	Fractions []float64
	// Min is the lowest value.
	Min uint32
}

// histogramSampleCap bounds the per-column sample used to build histograms
// (statistics collection must stay cheap at ingestion time).
const histogramSampleCap = 1 << 16

// defaultBuckets is the histogram resolution.
const defaultBuckets = 32

// BuildHistogram constructs an equi-depth histogram over data with at most
// the given number of buckets. Large columns are sampled with a fixed
// stride. Returns nil for empty input.
func BuildHistogram(data []uint32, buckets int) *Histogram {
	if len(data) == 0 || buckets <= 0 {
		return nil
	}
	sample := data
	if len(data) > histogramSampleCap {
		stride := len(data) / histogramSampleCap
		sample = make([]uint32, 0, histogramSampleCap)
		for i := 0; i < len(data); i += stride {
			sample = append(sample, data[i])
		}
	} else {
		sample = append([]uint32(nil), data...)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })

	h := &Histogram{Min: sample[0]}
	n := len(sample)
	per := n / buckets
	if per < 1 {
		per = 1
	}
	start := 0
	for start < n {
		end := start + per
		if end > n {
			end = n
		}
		bound := sample[end-1]
		// Extend the bucket through duplicates of its upper bound so a
		// value never straddles buckets.
		for end < n && sample[end] == bound {
			end++
		}
		h.Bounds = append(h.Bounds, bound)
		h.Fractions = append(h.Fractions, float64(end-start)/float64(n))
		start = end
	}
	return h
}

// RangeFraction estimates the fraction of rows with lo <= value <= hi.
func (h *Histogram) RangeFraction(lo, hi uint32) float64 {
	if h == nil || len(h.Bounds) == 0 || hi < lo {
		return 0
	}
	total := 0.0
	prevBound := h.Min
	for i, bound := range h.Bounds {
		bLo, bHi := prevBound, bound
		if i > 0 {
			// Bucket i covers (prevBound, bound]; approximate with
			// [prevBound+1, bound] in the integer domain.
			if prevBound < ^uint32(0) {
				bLo = prevBound + 1
			}
		}
		prevBound = bound
		if bHi < lo || bLo > hi {
			continue
		}
		// Overlap fraction within the bucket, assuming uniformity inside.
		oLo, oHi := bLo, bHi
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		span := float64(bHi-bLo) + 1
		total += h.Fractions[i] * (float64(oHi-oLo) + 1) / span
	}
	if total > 1 {
		total = 1
	}
	return total
}

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.Bounds) }

// String renders a compact summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "equi-depth histogram, %d buckets, min=%d:", len(h.Bounds), h.Min)
	show := len(h.Bounds)
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		fmt.Fprintf(&b, " ≤%d:%.1f%%", h.Bounds[i], 100*h.Fractions[i])
	}
	if show < len(h.Bounds) {
		b.WriteString(" ...")
	}
	return b.String()
}
