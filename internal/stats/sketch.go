package stats

// sketch.go is the distinct-count sketch behind large-column statistics: a
// KMV (k minimum values) estimator. Exact distinct counting hashes every
// value into a map — fine for dimension tables, but a multi-million-row
// fact column would make statistics collection cost a measurable fraction
// of the import itself. KMV keeps only the k smallest hashes seen; the
// density of those k order statistics in the hash space estimates the
// distinct count as (k-1) / kth-minimum-normalized. The hash is a fixed
// 64-bit mixer, so the sketch is deterministic: the same column always
// yields the same estimate, which keeps plans and goldens reproducible.

import "sort"

// sketchK is the number of minimum hash values retained. 1024 gives a
// relative standard error of about 1/sqrt(k-1) ≈ 3%.
const sketchK = 1024

// sketchExactCap is the column size up to which Collect counts distinct
// values exactly. Small relations (every SSB dimension, test fixtures) keep
// exact counts — and therefore exactly reproducible plans — while columns
// beyond the cap switch to the sketch.
const sketchExactCap = 1 << 16

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// estimateDistinctKMV sketches the distinct count of data with a KMV
// estimator. Falls back to exact counting when the domain is small enough
// that the sketch saturates (fewer than k distinct hashes seen).
func estimateDistinctKMV(data []uint32) int {
	// Collect the k smallest distinct hashes. A small map bounds the
	// candidate set; values hashing above the current kth minimum are
	// skipped without insertion.
	mins := make(map[uint64]struct{}, 2*sketchK)
	var threshold uint64 = ^uint64(0)
	for _, v := range data {
		h := mix64(uint64(v))
		if h > threshold {
			continue
		}
		mins[h] = struct{}{}
		if len(mins) > 2*sketchK {
			threshold = shrinkToK(mins, sketchK)
		}
	}
	if len(mins) > sketchK {
		shrinkToK(mins, sketchK)
	}
	if len(mins) < sketchK {
		// Sketch never filled: the column has fewer than k distinct values,
		// and the candidate set holds exactly one hash per distinct value.
		return len(mins)
	}
	hashes := make([]uint64, 0, len(mins))
	for h := range mins {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	kth := hashes[sketchK-1]
	if kth == 0 {
		return sketchK
	}
	// E[distinct] = (k-1) / fraction of hash space below the kth minimum.
	est := float64(sketchK-1) / (float64(kth) / float64(^uint64(0)))
	if est < float64(sketchK) {
		est = float64(sketchK)
	}
	return int(est)
}

// shrinkToK trims the candidate map down to its k smallest hashes and
// returns the new kth minimum (the admission threshold).
func shrinkToK(mins map[uint64]struct{}, k int) uint64 {
	hashes := make([]uint64, 0, len(mins))
	for h := range mins {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	for _, h := range hashes[k:] {
		delete(mins, h)
	}
	return hashes[k-1]
}
