package stats

import (
	"math"
	"testing"
	"testing/quick"

	"castle/internal/storage"
)

func testCatalog() *Catalog {
	db := storage.NewDatabase()
	t := storage.NewTable("t")
	t.AddIntColumn("year", []uint32{1992, 1993, 1994, 1995, 1992, 1993})
	t.AddIntColumn("qty", []uint32{1, 2, 3, 4, 5, 6})
	db.Add(t)
	return Collect(db)
}

func TestCollect(t *testing.T) {
	c := testCatalog()
	ts := c.MustTable("t")
	if ts.Rows != 6 {
		t.Fatalf("Rows = %d, want 6", ts.Rows)
	}
	ys := ts.Columns["year"]
	if ys.Min != 1992 || ys.Max != 1995 || ys.Distinct != 4 {
		t.Fatalf("year stats = %+v", ys)
	}
	if ys.BitWidth != 11 {
		t.Fatalf("year BitWidth = %d, want 11", ys.BitWidth)
	}
	if c.Table("missing") != nil {
		t.Fatal("missing table should be nil")
	}
	if _, ok := c.Column("t", "year"); !ok {
		t.Fatal("Column lookup failed")
	}
	if _, ok := c.Column("t", "nope"); ok {
		t.Fatal("missing column should not be found")
	}
	if _, ok := c.Column("nope", "x"); ok {
		t.Fatal("missing table should not be found")
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testCatalog().MustTable("missing")
}

func TestEqSelectivity(t *testing.T) {
	c := testCatalog()
	ys, _ := c.Column("t", "year")
	if got := ys.EqSelectivity(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("EqSelectivity = %f, want 0.25", got)
	}
	var empty ColumnStats
	if empty.EqSelectivity() != 0 {
		t.Fatal("empty column selectivity should be 0")
	}
}

func TestRangeSelectivity(t *testing.T) {
	c := testCatalog()
	ys, _ := c.Column("t", "year")
	if got := ys.RangeSelectivity(1992, 1995); math.Abs(got-1) > 0.01 {
		t.Fatalf("full range = %f, want ~1", got)
	}
	// The column is {1992,1993,1994,1995,1992,1993}: 4 of 6 rows fall in
	// [1992,1993]. The equi-depth histogram estimates the true fraction,
	// not the uniform 0.5.
	if got := ys.RangeSelectivity(1992, 1993); math.Abs(got-4.0/6) > 0.05 {
		t.Fatalf("half range = %f, want ~%f (true fraction)", got, 4.0/6)
	}
	if got := ys.RangeSelectivity(2000, 2001); got != 0 {
		t.Fatalf("out-of-range = %f, want 0", got)
	}
	// Clamping.
	if got := ys.RangeSelectivity(0, 5000); math.Abs(got-1) > 0.01 {
		t.Fatalf("clamped range = %f, want ~1", got)
	}
	// The uniform fallback applies when no histogram exists.
	noHist := ColumnStats{Min: 0, Max: 99, Distinct: 100}
	if got := noHist.RangeSelectivity(0, 49); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("uniform fallback = %f, want 0.5", got)
	}
}

func TestInSelectivity(t *testing.T) {
	c := testCatalog()
	ys, _ := c.Column("t", "year")
	if got := ys.InSelectivity(2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("IN(2) = %f, want 0.5", got)
	}
	if got := ys.InSelectivity(100); got != 1 {
		t.Fatalf("IN(100) = %f, want capped at 1", got)
	}
}

// Property: all selectivities are within [0, 1].
func TestQuickSelectivityBounds(t *testing.T) {
	f := func(data []uint32, lo, hi uint32, k uint8) bool {
		if len(data) == 0 {
			return true
		}
		db := storage.NewDatabase()
		tb := storage.NewTable("t")
		tb.AddIntColumn("x", data)
		db.Add(tb)
		cs, _ := Collect(db).Column("t", "x")
		for _, s := range []float64{
			cs.EqSelectivity(),
			cs.RangeSelectivity(lo, hi),
			cs.InSelectivity(int(k)),
		} {
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct count is exact.
func TestQuickDistinctExact(t *testing.T) {
	f := func(data []uint32) bool {
		if len(data) == 0 {
			return true
		}
		db := storage.NewDatabase()
		tb := storage.NewTable("t")
		tb.AddIntColumn("x", data)
		db.Add(tb)
		cs, _ := Collect(db).Column("t", "x")
		ref := map[uint32]bool{}
		for _, v := range data {
			ref[v] = true
		}
		return cs.Distinct == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
