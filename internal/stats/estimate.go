package stats

// estimate.go is the catalog's predicate-estimation surface: the single
// place that turns a bound predicate into a selectivity, tagged with where
// the number came from. The optimizer's placement search, the facade's
// misestimate telemetry, and the adaptive re-placement checkpoint all
// consume the same (selectivity, Source) pairs, so "histogram-driven" vs
// "assumed" vs "observed" estimates stay distinguishable end to end.

import (
	"math"

	"castle/internal/plan"
)

// Source identifies where a cardinality estimate came from.
type Source int

const (
	// SourceAssumed marks a fixed-constant (Selinger default) estimate made
	// without consulting column statistics — either because the column is
	// unknown to the catalog or because the fixed model was requested.
	SourceAssumed Source = iota
	// SourceHistogram marks an estimate derived from collected statistics:
	// equi-depth histograms, distinct counts, min/max bounds.
	SourceHistogram
	// SourceObserved marks a cardinality measured during execution (the
	// adaptive checkpoint's survivor count), not estimated at all.
	SourceObserved
)

// String renders the source the way flight records and EXPLAIN ANALYZE
// print it.
func (s Source) String() string {
	switch s {
	case SourceHistogram:
		return "histogram"
	case SourceObserved:
		return "observed"
	default:
		return "assumed"
	}
}

// Estimate returns the fraction of rows the predicate retains and the
// provenance of that number. Known columns are priced from collected
// statistics (SourceHistogram); unknown columns fall back to selectivity 1
// with SourceAssumed. A bind-time contradiction (p.Never) is exact
// knowledge, not an assumption.
func (c *Catalog) Estimate(p plan.Predicate) (float64, Source) {
	if p.Never {
		return 0, SourceHistogram
	}
	cs, ok := c.Column(p.Table, p.Column)
	if !ok {
		return 1, SourceAssumed
	}
	switch p.Op {
	case plan.PredEQ:
		return cs.EqSelectivity(), SourceHistogram
	case plan.PredNE:
		return 1 - cs.EqSelectivity(), SourceHistogram
	case plan.PredLT:
		if p.Value == 0 {
			return 0, SourceHistogram
		}
		return cs.RangeSelectivity(cs.Min, p.Value-1), SourceHistogram
	case plan.PredLE:
		return cs.RangeSelectivity(cs.Min, p.Value), SourceHistogram
	case plan.PredGT:
		if p.Value == math.MaxUint32 {
			return 0, SourceHistogram
		}
		return cs.RangeSelectivity(p.Value+1, cs.Max), SourceHistogram
	case plan.PredGE:
		return cs.RangeSelectivity(p.Value, cs.Max), SourceHistogram
	case plan.PredBetween:
		return cs.RangeSelectivity(p.Lo, p.Hi), SourceHistogram
	case plan.PredIn:
		return cs.InSelectivity(len(p.Values)), SourceHistogram
	}
	return 1, SourceAssumed
}

// EstimateConjunction multiplies the independent selectivities of a
// predicate list. The source is SourceHistogram only when every conjunct
// was statistics-backed; one assumed term taints the product.
func (c *Catalog) EstimateConjunction(preds []plan.Predicate) (float64, Source) {
	s, src := 1.0, SourceHistogram
	for _, p := range preds {
		ps, psrc := c.Estimate(p)
		s *= ps
		if psrc == SourceAssumed {
			src = SourceAssumed
		}
	}
	return s, src
}

// Fixed-constant Selinger defaults (System R's magic numbers), used when a
// column has no statistics and by the bench harness to quantify what the
// histograms buy.
const (
	fixedEqSelectivity    = 0.1
	fixedRangeSelectivity = 1.0 / 3.0
	fixedBetweenSel       = 0.25
)

// FixedEstimate prices a predicate with the classic fixed-constant model —
// no statistics consulted. This is the "assumed" baseline the bench
// artifact's misestimate summary compares the histogram model against.
func FixedEstimate(p plan.Predicate) float64 {
	if p.Never {
		return 0
	}
	switch p.Op {
	case plan.PredEQ:
		return fixedEqSelectivity
	case plan.PredNE:
		return 1 - fixedEqSelectivity
	case plan.PredLT, plan.PredLE, plan.PredGT, plan.PredGE:
		return fixedRangeSelectivity
	case plan.PredBetween:
		return fixedBetweenSel
	case plan.PredIn:
		s := float64(len(p.Values)) * fixedEqSelectivity
		if s > 1 {
			s = 1
		}
		return s
	}
	return 1
}

// GroupCardinality predicts the number of result groups for a GROUP BY over
// the given fact table: the product of the group columns' distinct counts,
// capped at 1<<30 and by the fact cardinality. The source degrades to
// SourceAssumed when any group column has no statistics (its contribution
// is silently 1).
func (c *Catalog) GroupCardinality(fact string, groupBy []plan.ColRef) (int, Source) {
	if len(groupBy) == 0 {
		return 1, SourceHistogram
	}
	groups, src := 1, SourceHistogram
	for _, g := range groupBy {
		cs, ok := c.Column(g.Table, g.Column)
		if !ok || cs.Distinct <= 0 {
			src = SourceAssumed
			continue
		}
		if groups > 1<<30/cs.Distinct {
			groups = 1 << 30
			break
		}
		groups *= cs.Distinct
	}
	if t := c.Table(fact); t != nil && groups > t.Rows {
		groups = t.Rows
	}
	return groups, src
}
