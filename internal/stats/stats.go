// Package stats computes the table statistics Castle's query optimizer and
// ABA consume: row counts, per-column min/max and distinct-value counts.
// Database systems collect these at ingestion time by default (§5.1 cites
// Selinger-style min/max statistics); Castle does the same when a relation
// is registered.
package stats

import (
	"fmt"

	"castle/internal/storage"
)

// ColumnStats summarises one column.
type ColumnStats struct {
	Min, Max uint32
	// Distinct is the exact number of distinct values.
	Distinct int
	// BitWidth is the operating bitwidth ABA can use for the column.
	BitWidth int
	// Hist is an equi-depth histogram used for range selectivity on
	// skewed distributions (nil when collection was skipped).
	Hist *Histogram
}

// TableStats summarises one relation.
type TableStats struct {
	Rows    int
	Columns map[string]ColumnStats
}

// Catalog holds statistics for every relation in a database.
type Catalog struct {
	tables map[string]*TableStats
}

// Collect scans the database and builds a statistics catalog.
func Collect(db *storage.Database) *Catalog {
	c := &Catalog{tables: make(map[string]*TableStats)}
	for _, t := range db.Tables() {
		ts := &TableStats{Rows: t.Rows(), Columns: make(map[string]ColumnStats)}
		for _, col := range t.Columns() {
			ts.Columns[col.Name] = ColumnStats{
				Min:      col.Min,
				Max:      col.Max,
				Distinct: countDistinct(col.Data),
				BitWidth: col.BitWidth(),
				Hist:     BuildHistogram(col.Data, defaultBuckets),
			}
		}
		c.tables[t.Name] = ts
	}
	return c
}

// countDistinct counts distinct values — exactly for small columns, with
// the deterministic KMV sketch beyond sketchExactCap rows (an exact map
// over a multi-million-row fact column would dominate collection time).
func countDistinct(data []uint32) int {
	if len(data) > sketchExactCap {
		return estimateDistinctKMV(data)
	}
	seen := make(map[uint32]struct{}, 1024)
	for _, v := range data {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Table returns statistics for the named relation, or nil.
func (c *Catalog) Table(name string) *TableStats { return c.tables[name] }

// MustTable returns statistics for the named relation or panics.
func (c *Catalog) MustTable(name string) *TableStats {
	t := c.tables[name]
	if t == nil {
		panic(fmt.Sprintf("stats: no statistics for table %s", name))
	}
	return t
}

// Column returns statistics for table.column; ok is false if either is
// unknown.
func (c *Catalog) Column(table, column string) (ColumnStats, bool) {
	t := c.tables[table]
	if t == nil {
		return ColumnStats{}, false
	}
	cs, ok := t.Columns[column]
	return cs, ok
}

// EqSelectivity estimates the fraction of rows matching column = literal
// under the uniform-distribution assumption (1/NDV, the classic Selinger
// estimate).
func (cs ColumnStats) EqSelectivity() float64 {
	if cs.Distinct == 0 {
		return 0
	}
	return 1 / float64(cs.Distinct)
}

// RangeSelectivity estimates the fraction of rows with lo <= value <= hi,
// using the equi-depth histogram when available and falling back to the
// classic min/max uniform assumption otherwise.
func (cs ColumnStats) RangeSelectivity(lo, hi uint32) float64 {
	if cs.Max < cs.Min {
		return 0
	}
	if hi > cs.Max {
		hi = cs.Max
	}
	if lo < cs.Min {
		lo = cs.Min
	}
	if hi < lo {
		return 0
	}
	if cs.Hist != nil {
		return cs.Hist.RangeFraction(lo, hi)
	}
	span := float64(cs.Max-cs.Min) + 1
	return (float64(hi-lo) + 1) / span
}

// InSelectivity estimates the fraction of rows matching an IN list of k
// values.
func (cs ColumnStats) InSelectivity(k int) float64 {
	s := float64(k) * cs.EqSelectivity()
	if s > 1 {
		s = 1
	}
	return s
}
