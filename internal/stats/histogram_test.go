package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"castle/internal/storage"
)

func TestBuildHistogramBasics(t *testing.T) {
	data := make([]uint32, 1000)
	for i := range data {
		data[i] = uint32(i)
	}
	h := BuildHistogram(data, 10)
	if h == nil || h.Buckets() == 0 {
		t.Fatal("no histogram built")
	}
	var total float64
	for _, f := range h.Fractions {
		total += f
	}
	if math.Abs(total-1) > 0.01 {
		t.Fatalf("fractions sum to %f", total)
	}
	if h.Min != 0 {
		t.Fatalf("min = %d", h.Min)
	}
	if h.String() == "" {
		t.Fatal("empty histogram string")
	}
}

func TestBuildHistogramEdgeCases(t *testing.T) {
	if BuildHistogram(nil, 8) != nil {
		t.Fatal("empty input should yield nil")
	}
	if BuildHistogram([]uint32{1}, 0) != nil {
		t.Fatal("zero buckets should yield nil")
	}
	// All-equal column: single bucket, full fraction.
	h := BuildHistogram([]uint32{7, 7, 7, 7}, 4)
	if h.Buckets() != 1 || math.Abs(h.Fractions[0]-1) > 1e-9 {
		t.Fatalf("constant column histogram: %+v", h)
	}
	if got := h.RangeFraction(7, 7); math.Abs(got-1) > 1e-9 {
		t.Fatalf("constant range fraction = %f", got)
	}
	if got := h.RangeFraction(8, 9); got != 0 {
		t.Fatalf("out-of-range fraction = %f", got)
	}
	if got := h.RangeFraction(9, 8); got != 0 {
		t.Fatalf("inverted range fraction = %f", got)
	}
	var nilH *Histogram
	if nilH.RangeFraction(1, 2) != 0 {
		t.Fatal("nil histogram should estimate 0")
	}
}

// TestHistogramBeatsUniformOnSkew is the reason histograms exist: on a
// heavily skewed column, the equi-depth estimate for a hot range is far
// closer to the truth than the min/max uniform assumption.
func TestHistogramBeatsUniformOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]uint32, 100000)
	for i := range data {
		if rng.Intn(100) < 90 {
			data[i] = uint32(rng.Intn(10)) // 90% of rows in [0,10)
		} else {
			data[i] = uint32(10 + rng.Intn(1_000_000))
		}
	}
	truth := 0.0
	for _, v := range data {
		if v < 10 {
			truth++
		}
	}
	truth /= float64(len(data))

	db := storage.NewDatabase()
	tb := storage.NewTable("t")
	tb.AddIntColumn("x", data)
	db.Add(tb)
	cs, _ := Collect(db).Column("t", "x")

	histEst := cs.RangeSelectivity(0, 9)
	uniform := (float64(9) + 1) / (float64(cs.Max-cs.Min) + 1)

	if math.Abs(histEst-truth) > 0.1 {
		t.Fatalf("histogram estimate %f too far from truth %f", histEst, truth)
	}
	if math.Abs(uniform-truth) < math.Abs(histEst-truth) {
		t.Fatalf("uniform (%f) should be worse than histogram (%f) for truth %f",
			uniform, histEst, truth)
	}
}

// Property: range fractions are within [0,1] and monotone in range width.
func TestQuickHistogramBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]uint32, 5000)
	for i := range data {
		data[i] = uint32(rng.Intn(1 << 16))
	}
	h := BuildHistogram(data, 16)
	f := func(aRaw, bRaw, cRaw uint16) bool {
		lo, hi := uint32(aRaw), uint32(bRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		wider := uint32(cRaw)
		fNarrow := h.RangeFraction(lo, hi)
		fWide := h.RangeFraction(lo, hi+wider)
		return fNarrow >= 0 && fNarrow <= 1 && fWide >= fNarrow-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a full-domain range estimates ~1.
func TestQuickHistogramFullRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000) + 10
		data := make([]uint32, n)
		for i := range data {
			data[i] = uint32(rng.Intn(1000))
		}
		h := BuildHistogram(data, 8)
		got := h.RangeFraction(0, 1000)
		return got > 0.95 && got <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
