package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"castle/internal/plan"
	"castle/internal/storage"
)

// randPredicate builds an arbitrary single-column predicate over t.year
// (known to the catalog) or a missing column, across every operator.
func randPredicate(r *rand.Rand) plan.Predicate {
	ops := []plan.PredOp{plan.PredEQ, plan.PredNE, plan.PredLT, plan.PredLE,
		plan.PredGT, plan.PredGE, plan.PredBetween, plan.PredIn}
	p := plan.Predicate{Table: "t", Column: "year", Op: ops[r.Intn(len(ops))]}
	if r.Intn(4) == 0 {
		p.Column = "missing"
	}
	p.Value = uint32(r.Int63n(5000))
	lo, hi := uint32(r.Int63n(5000)), uint32(r.Int63n(5000))
	if lo > hi {
		lo, hi = hi, lo
	}
	p.Lo, p.Hi = lo, hi
	for i := 0; i < r.Intn(5); i++ {
		p.Values = append(p.Values, uint32(r.Int63n(5000)))
	}
	if r.Intn(8) == 0 {
		p.Never = true
	}
	return p
}

// TestQuickEstimateInUnitInterval: every estimate, for every operator and
// for known and unknown columns alike, is a valid selectivity in [0, 1] —
// the fixed-constant model included.
func TestQuickEstimateInUnitInterval(t *testing.T) {
	c := testCatalog()
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		p := randPredicate(rand.New(rand.NewSource(seed)))
		s, src := c.Estimate(p)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Logf("Estimate(%+v) = %f", p, s)
			return false
		}
		if _, known := c.Column(p.Table, p.Column); !known && !p.Never && src != SourceAssumed {
			t.Logf("unknown column estimated from %v", src)
			return false
		}
		if fs := FixedEstimate(p); fs < 0 || fs > 1 {
			t.Logf("FixedEstimate(%+v) = %f", p, fs)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConjunctionNeverIncreases: adding a conjunct can only shrink (or
// keep) the estimated survivor fraction — the independence product must be
// monotonically non-increasing in the predicate list.
func TestQuickConjunctionNeverIncreases(t *testing.T) {
	c := testCatalog()
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var preds []plan.Predicate
		prev := 1.0
		for i := 0; i < 1+r.Intn(5); i++ {
			preds = append(preds, randPredicate(r))
			s, _ := c.EstimateConjunction(preds)
			if s > prev+1e-12 || s < 0 || s > 1 {
				t.Logf("conjunction grew: %f after %f with %d preds", s, prev, len(preds))
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCardinalityBounds: the predicted group count never exceeds the
// distinct-count product nor the fact table's cardinality, and an unknown
// group column degrades the source to assumed.
func TestGroupCardinalityBounds(t *testing.T) {
	c := testCatalog()
	g, src := c.GroupCardinality("t", []plan.ColRef{{Table: "t", Column: "year"}})
	if g != 4 || src != SourceHistogram {
		t.Fatalf("GroupCardinality(year) = %d/%v, want 4/histogram", g, src)
	}
	g, src = c.GroupCardinality("t", []plan.ColRef{
		{Table: "t", Column: "year"}, {Table: "t", Column: "qty"}})
	if g != 6 || src != SourceHistogram { // 4*6 = 24 capped at 6 rows
		t.Fatalf("GroupCardinality(year,qty) = %d/%v, want row-capped 6/histogram", g, src)
	}
	g, src = c.GroupCardinality("t", []plan.ColRef{{Table: "t", Column: "missing"}})
	if g != 1 || src != SourceAssumed {
		t.Fatalf("GroupCardinality(missing) = %d/%v, want 1/assumed", g, src)
	}
	if g, _ := c.GroupCardinality("t", nil); g != 1 {
		t.Fatalf("GroupCardinality(no group by) = %d, want 1", g)
	}
}

// TestEstimateSources pins the provenance contract: known columns are
// histogram-backed, unknown columns are assumed, a bind-time contradiction
// is exact knowledge, and one assumed conjunct taints the product.
func TestEstimateSources(t *testing.T) {
	c := testCatalog()
	if _, src := c.Estimate(plan.Predicate{Table: "t", Column: "year", Op: plan.PredEQ, Value: 1993}); src != SourceHistogram {
		t.Fatalf("known column source = %v", src)
	}
	if s, src := c.Estimate(plan.Predicate{Table: "t", Column: "nope", Op: plan.PredEQ}); s != 1 || src != SourceAssumed {
		t.Fatalf("unknown column = %f/%v", s, src)
	}
	if s, src := c.Estimate(plan.Predicate{Never: true}); s != 0 || src != SourceHistogram {
		t.Fatalf("contradiction = %f/%v", s, src)
	}
	_, src := c.EstimateConjunction([]plan.Predicate{
		{Table: "t", Column: "year", Op: plan.PredEQ, Value: 1993},
		{Table: "t", Column: "nope", Op: plan.PredEQ, Value: 1},
	})
	if src != SourceAssumed {
		t.Fatalf("tainted conjunction source = %v, want assumed", src)
	}
}

// TestEstimateEdgeColumns covers the histogram edge cases through the
// estimation surface: an empty column, a single-value column, and a heavily
// skewed domain must all produce valid selectivities.
func TestEstimateEdgeColumns(t *testing.T) {
	db := storage.NewDatabase()
	tb := storage.NewTable("edge")
	tb.AddIntColumn("empty", nil)
	db.Add(tb)
	one := storage.NewTable("one")
	one.AddIntColumn("v", []uint32{7, 7, 7, 7})
	db.Add(one)
	skew := storage.NewTable("skew")
	vals := make([]uint32, 10000)
	for i := range vals {
		if i%100 == 0 {
			vals[i] = uint32(i) // 1% spread over a wide domain
		} else {
			vals[i] = 5 // 99% at one point
		}
	}
	skew.AddIntColumn("v", vals)
	db.Add(skew)
	c := Collect(db)

	for _, tc := range []struct {
		table, col string
		p          plan.Predicate
	}{
		{"edge", "empty", plan.Predicate{Table: "edge", Column: "empty", Op: plan.PredEQ, Value: 1}},
		{"edge", "empty", plan.Predicate{Table: "edge", Column: "empty", Op: plan.PredBetween, Lo: 1, Hi: 10}},
		{"one", "v", plan.Predicate{Table: "one", Column: "v", Op: plan.PredEQ, Value: 7}},
		{"one", "v", plan.Predicate{Table: "one", Column: "v", Op: plan.PredLT, Value: 7}},
		{"skew", "v", plan.Predicate{Table: "skew", Column: "v", Op: plan.PredEQ, Value: 5}},
		{"skew", "v", plan.Predicate{Table: "skew", Column: "v", Op: plan.PredBetween, Lo: 0, Hi: 4}},
	} {
		s, _ := c.Estimate(tc.p)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Errorf("%s.%s %v: estimate %f outside [0,1]", tc.table, tc.col, tc.p.Op, s)
		}
	}
	// The single-value column's equality estimate is exact.
	if s, _ := c.Estimate(plan.Predicate{Table: "one", Column: "v", Op: plan.PredEQ, Value: 7}); s != 1 {
		t.Errorf("single-value EQ estimate = %f, want 1", s)
	}
	// On the skewed domain the wide range holding every row estimates near
	// 1, far above the fixed 1/3 constant — the histogram knows the domain.
	s, src := c.Estimate(plan.Predicate{Table: "skew", Column: "v", Op: plan.PredBetween, Lo: 0, Hi: 9900})
	if src != SourceHistogram {
		t.Fatalf("skew estimate source = %v", src)
	}
	if s < 0.9 {
		t.Errorf("full-domain range estimate = %f, want ≈1", s)
	}
}

// TestSketchDistinct: below the exact cap counting is exact; above it the
// KMV estimate lands within a reasonable relative error, deterministically.
func TestSketchDistinct(t *testing.T) {
	small := make([]uint32, 1000)
	for i := range small {
		small[i] = uint32(i % 137)
	}
	if got := countDistinct(small); got != 137 {
		t.Fatalf("small countDistinct = %d, want exact 137", got)
	}

	const n, d = 200000, 50000
	big := make([]uint32, n)
	r := rand.New(rand.NewSource(42))
	for i := range big {
		big[i] = uint32(r.Intn(d))
	}
	got := countDistinct(big)
	if rel := math.Abs(float64(got)-d) / d; rel > 0.10 {
		t.Fatalf("sketch distinct = %d for true %d (rel err %.3f > 0.10)", got, d, rel)
	}
	if again := countDistinct(big); again != got {
		t.Fatalf("sketch not deterministic: %d then %d", got, again)
	}
}
