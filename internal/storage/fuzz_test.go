package storage

import (
	"bytes"
	"testing"
)

// FuzzReadBinary asserts ReadBinary is total over arbitrary bytes: it
// either returns a database or an error, never panics, and anything it
// accepts must itself round-trip. Seeded with a valid serialized database
// plus the interesting prefixes. Run with
//
//	go test ./internal/storage -fuzz FuzzReadBinary -fuzztime 10s
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleDB().WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("CSTL"))
	f.Add([]byte("CSTL\x01\x00\x00\x00"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted inputs must round-trip: write-back succeeds and re-reads
		// to an equal database.
		var buf bytes.Buffer
		if err := db.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted database fails to serialize: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-read of accepted database fails: %v", err)
		}
		assertDBEqual(t, db, again)
	})
}
