package storage

// corrupt_test.go feeds ReadBinary deliberately hostile inputs: every
// length and count field in the format is attacker-controlled, and each
// must produce a descriptive error — never a panic, never an attempt to
// allocate what the field claims.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// cstlBuilder assembles raw CSTL streams field by field.
type cstlBuilder struct{ bytes.Buffer }

func (b *cstlBuilder) u32(v uint32) *cstlBuilder {
	_ = binary.Write(&b.Buffer, binary.LittleEndian, v)
	return b
}

func (b *cstlBuilder) str(s string) *cstlBuilder {
	b.u32(uint32(len(s)))
	b.WriteString(s)
	return b
}

func (b *cstlBuilder) header(tables uint32) *cstlBuilder {
	b.WriteString("CSTL")
	b.u32(1) // version
	b.u32(tables)
	return b
}

func TestReadBinaryCorruptFields(t *testing.T) {
	cases := []struct {
		name  string
		build func() []byte
		want  string // substring of the expected error
	}{
		{
			"huge table count",
			func() []byte { return new(cstlBuilder).header(1 << 21).Bytes() },
			"table count",
		},
		{
			"huge column count",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(0).u32(1 << 21)
				return b.Bytes()
			},
			"column count",
		},
		{
			"huge string length",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.u32(1 << 30) // table-name length field, no bytes behind it
				return b.Bytes()
			},
			"string length",
		},
		{
			"huge row count with no data",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(0xFFFF_FFFF).u32(1)
				b.str("c").u32(uint32(KindInt))
				return b.Bytes()
			},
			"truncated",
		},
		{
			"huge dictionary with no entries",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(1).u32(1)
				b.str("s").u32(uint32(KindString)).u32(0xFFFF_FFFF)
				return b.Bytes()
			},
			"dictionary",
		},
		{
			"duplicate table name",
			func() []byte {
				b := new(cstlBuilder).header(2)
				for i := 0; i < 2; i++ {
					b.str("t").u32(1).u32(1)
					b.str("c").u32(uint32(KindInt)).u32(7)
				}
				return b.Bytes()
			},
			"duplicate table",
		},
		{
			"duplicate column name",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(1).u32(2)
				for i := 0; i < 2; i++ {
					b.str("c").u32(uint32(KindInt)).u32(7)
				}
				return b.Bytes()
			},
			"duplicate column",
		},
		{
			"unknown column kind",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(1).u32(1)
				b.str("c").u32(42).u32(7)
				return b.Bytes()
			},
			"unknown column kind",
		},
		{
			"dictionary code out of range",
			func() []byte {
				b := new(cstlBuilder).header(1)
				b.str("t").u32(1).u32(1)
				b.str("s").u32(uint32(KindString)).u32(1)
				b.str("only")
				b.u32(5) // row 0's code, dictionary has one entry
				return b.Bytes()
			},
			"outside dictionary",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.build()))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWriteBinaryRowOverflow checks the u32-narrowing guard: a table whose
// row count cannot be represented in the format must fail loudly, not
// serialize a truncated count. (White-box: the row count is forged, since
// 2^32 real rows will not fit in a test.)
func TestWriteBinaryRowOverflow(t *testing.T) {
	db := NewDatabase()
	tbl := NewTable("huge")
	tbl.AddIntColumn("c", []uint32{1})
	tbl.rows = 1 << 32
	db.Add(tbl)
	err := db.WriteBinary(&bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "u32") {
		t.Fatalf("want u32 overflow error, got %v", err)
	}
}

func TestReadCSVDuplicateHeader(t *testing.T) {
	_, err := ReadCSV("t", strings.NewReader("a,b,a\n1,2,3\n"))
	if err == nil || !strings.Contains(err.Error(), "duplicate CSV column") {
		t.Fatalf("want duplicate-column error, got %v", err)
	}
}
