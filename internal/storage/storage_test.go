package storage

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func TestDictionaryRoundTrip(t *testing.T) {
	vals := []string{"AMERICA", "ASIA", "EUROPE", "ASIA", "AMERICA"}
	d := NewDictionary(vals)
	if d.Size() != 3 {
		t.Fatalf("Size = %d, want 3", d.Size())
	}
	for _, v := range vals {
		c, ok := d.Encode(v)
		if !ok {
			t.Fatalf("Encode(%q) missing", v)
		}
		if got := d.Decode(c); got != v {
			t.Fatalf("Decode(Encode(%q)) = %q", v, got)
		}
	}
	if _, ok := d.Encode("MARS"); ok {
		t.Fatal("Encode of unknown value should fail")
	}
	if d.Decode(99) == "" {
		t.Fatal("Decode of unknown code should return a placeholder")
	}
}

func TestDictionaryCodesAreSorted(t *testing.T) {
	d := NewDictionary([]string{"b", "a", "c"})
	ca, _ := d.Encode("a")
	cb, _ := d.Encode("b")
	cc, _ := d.Encode("c")
	if !(ca < cb && cb < cc) {
		t.Fatalf("codes not sorted: a=%d b=%d c=%d", ca, cb, cc)
	}
}

func TestColumnStatsAndBitWidth(t *testing.T) {
	tb := NewTable("t")
	c := tb.AddIntColumn("x", []uint32{5, 3, 12, 7})
	if c.Min != 3 || c.Max != 12 {
		t.Fatalf("min/max = %d/%d, want 3/12", c.Min, c.Max)
	}
	if c.BitWidth() != 4 {
		t.Fatalf("BitWidth = %d, want 4", c.BitWidth())
	}
	empty := NewTable("e").AddIntColumn("y", nil)
	if empty.BitWidth() != 1 {
		t.Fatalf("empty column BitWidth = %d, want 1", empty.BitWidth())
	}
}

func TestTableConstruction(t *testing.T) {
	tb := NewTable("orders")
	tb.AddIntColumn("qty", []uint32{1, 2, 3})
	tb.AddStringColumn("region", []string{"ASIA", "ASIA", "EUROPE"})
	if tb.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", tb.Rows())
	}
	if len(tb.Columns()) != 2 {
		t.Fatalf("Columns = %d, want 2", len(tb.Columns()))
	}
	r := tb.MustColumn("region")
	if r.Kind != KindString || r.Dict == nil {
		t.Fatal("region should be dictionary-encoded")
	}
	if got := r.Dict.Decode(r.Data[2]); got != "EUROPE" {
		t.Fatalf("row 2 region = %q, want EUROPE", got)
	}
	if tb.SizeBytes() != 2*3*4 {
		t.Fatalf("SizeBytes = %d", tb.SizeBytes())
	}
	if tb.Column("nope") != nil {
		t.Fatal("missing column should be nil")
	}
}

func TestTableMismatchedLengthPanics(t *testing.T) {
	tb := NewTable("t")
	tb.AddIntColumn("a", []uint32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	tb.AddIntColumn("b", []uint32{1})
}

func TestDuplicateColumnPanics(t *testing.T) {
	tb := NewTable("t")
	tb.AddIntColumn("a", []uint32{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	tb.AddIntColumn("a", []uint32{2})
}

func TestMustColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("t").MustColumn("missing")
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	t1 := NewTable("fact")
	t1.AddIntColumn("fk", []uint32{1})
	t2 := NewTable("dim")
	t2.AddIntColumn("key", []uint32{1})
	db.Add(t1)
	db.Add(t2)
	if db.Table("fact") != t1 || db.MustTable("dim") != t2 {
		t.Fatal("lookup broken")
	}
	if db.Table("nope") != nil {
		t.Fatal("missing table should be nil")
	}
	names := db.Tables()
	if len(names) != 2 || names[0].Name != "fact" || names[1].Name != "dim" {
		t.Fatal("Tables order wrong")
	}
}

func TestDatabaseDuplicatePanics(t *testing.T) {
	db := NewDatabase()
	db.Add(NewTable("t"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.Add(NewTable("t"))
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDatabase().MustTable("missing")
}

func TestFindColumn(t *testing.T) {
	db := NewDatabase()
	f := NewTable("fact")
	f.AddIntColumn("lo_qty", []uint32{1})
	d := NewTable("dim")
	d.AddIntColumn("d_year", []uint32{1})
	db.Add(f)
	db.Add(d)

	tb, c, err := db.FindColumn("d_year")
	if err != nil || tb.Name != "dim" || c.Name != "d_year" {
		t.Fatalf("FindColumn(d_year) = %v %v %v", tb, c, err)
	}
	if _, _, err := db.FindColumn("missing"); err == nil {
		t.Fatal("missing column should error")
	}

	// Ambiguity.
	d2 := NewTable("dim2")
	d2.AddIntColumn("d_year", []uint32{1})
	db.Add(d2)
	if _, _, err := db.FindColumn("d_year"); err == nil {
		t.Fatal("ambiguous column should error")
	}
}

// Property: dictionary encode/decode is a bijection over distinct inputs.
func TestQuickDictionaryBijection(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]string, n)
		for i := range vals {
			vals[i] = "v" + strconv.Itoa(rng.Intn(20))
		}
		d := NewDictionary(vals)
		seen := map[uint32]string{}
		for _, v := range vals {
			c, ok := d.Encode(v)
			if !ok {
				return false
			}
			if prev, dup := seen[c]; dup && prev != v {
				return false
			}
			seen[c] = v
			if d.Decode(c) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: column stats bound every element.
func TestQuickColumnStatsBound(t *testing.T) {
	f := func(data []uint32) bool {
		if len(data) == 0 {
			return true
		}
		tb := NewTable("t")
		c := tb.AddIntColumn("x", data)
		for _, v := range data {
			if v < c.Min || v > c.Max {
				return false
			}
		}
		width := c.BitWidth()
		return width >= 1 && width <= 32 && (width == 32 || c.Max < 1<<uint(width))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
