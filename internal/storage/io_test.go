package storage

import (
	"bytes"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDB() *Database {
	db := NewDatabase()
	d := NewTable("dim")
	d.AddIntColumn("d_key", []uint32{1, 2, 3})
	d.AddStringColumn("d_region", []string{"ASIA", "EUROPE", "ASIA"})
	db.Add(d)
	f := NewTable("fact")
	f.AddIntColumn("f_fk", []uint32{1, 2, 3, 1})
	f.AddIntColumn("f_val", []uint32{10, 20, 30, 40})
	db.Add(f)
	return db
}

func TestBinaryRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := db.WriteBinary(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	assertDBEqual(t, db, got)
}

func assertDBEqual(t *testing.T, want, got *Database) {
	t.Helper()
	wt, gt := want.Tables(), got.Tables()
	if len(wt) != len(gt) {
		t.Fatalf("table count %d vs %d", len(gt), len(wt))
	}
	for i := range wt {
		if wt[i].Name != gt[i].Name || wt[i].Rows() != gt[i].Rows() {
			t.Fatalf("table %d mismatch: %s/%d vs %s/%d",
				i, gt[i].Name, gt[i].Rows(), wt[i].Name, wt[i].Rows())
		}
		wc, gc := wt[i].Columns(), gt[i].Columns()
		if len(wc) != len(gc) {
			t.Fatalf("%s: column count %d vs %d", wt[i].Name, len(gc), len(wc))
		}
		for ci := range wc {
			if wc[ci].Name != gc[ci].Name || wc[ci].Kind != gc[ci].Kind {
				t.Fatalf("%s col %d: %s/%d vs %s/%d",
					wt[i].Name, ci, gc[ci].Name, gc[ci].Kind, wc[ci].Name, wc[ci].Kind)
			}
			for r := range wc[ci].Data {
				if wc[ci].Kind == KindString {
					// Codes must decode to the same strings (code values
					// may legally differ if dictionaries re-sort).
					if wc[ci].Dict.Decode(wc[ci].Data[r]) != gc[ci].Dict.Decode(gc[ci].Data[r]) {
						t.Fatalf("%s.%s row %d: %q vs %q", wt[i].Name, wc[ci].Name, r,
							gc[ci].Dict.Decode(gc[ci].Data[r]), wc[ci].Dict.Decode(wc[ci].Data[r]))
					}
				} else if wc[ci].Data[r] != gc[ci].Data[r] {
					t.Fatalf("%s.%s row %d: %d vs %d", wt[i].Name, wc[ci].Name, r,
						gc[ci].Data[r], wc[ci].Data[r])
				}
			}
			if wc[ci].Min != gc[ci].Min || wc[ci].Max != gc[ci].Max {
				t.Fatalf("%s.%s stats mismatch", wt[i].Name, wc[ci].Name)
			}
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01\x00\x00\x00"),
		"truncated": []byte("CSTL\x01\x00\x00\x00\x05\x00\x00\x00"),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("CSTL")
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version error expected, got %v", err)
	}
}

func TestReadCSV(t *testing.T) {
	csv := "id,region,qty\n1,ASIA,10\n2,EUROPE,20\n3,ASIA,30\n"
	tbl, err := ReadCSV("t", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	if tbl.MustColumn("id").Kind != KindInt || tbl.MustColumn("qty").Kind != KindInt {
		t.Fatal("numeric columns should be KindInt")
	}
	region := tbl.MustColumn("region")
	if region.Kind != KindString {
		t.Fatal("region should be dictionary-encoded")
	}
	if region.Dict.Decode(region.Data[1]) != "EUROPE" {
		t.Fatal("region decode wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should error")
	}
}

func TestCSVRoundTripThroughSSBStyle(t *testing.T) {
	// Write a table the way cmd/ssbgen does, read it back.
	db := sampleDB()
	src := db.MustTable("dim")
	var sb strings.Builder
	cols := src.Columns()
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	for r := 0; r < src.Rows(); r++ {
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			if c.Dict != nil {
				sb.WriteString(c.Dict.Decode(c.Data[r]))
			} else {
				sb.WriteString(strconv.FormatUint(uint64(c.Data[r]), 10))
			}
		}
		sb.WriteByte('\n')
	}
	got, err := ReadCSV("dim", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != src.Rows() {
		t.Fatalf("rows = %d, want %d", got.Rows(), src.Rows())
	}
	gr := got.MustColumn("d_region")
	sr := src.MustColumn("d_region")
	for r := 0; r < src.Rows(); r++ {
		if gr.Dict.Decode(gr.Data[r]) != sr.Dict.Decode(sr.Data[r]) {
			t.Fatalf("row %d region mismatch", r)
		}
	}
}

// Property: binary round trip preserves arbitrary tables.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDatabase()
		rows := rng.Intn(50) + 1
		tbl := NewTable("t")
		ints := make([]uint32, rows)
		strsV := make([]string, rows)
		for i := range ints {
			ints[i] = rng.Uint32()
			strsV[i] = fuzzWord(rng)
		}
		tbl.AddIntColumn("a", ints)
		tbl.AddStringColumn("s", strsV)
		db.Add(tbl)

		var buf bytes.Buffer
		if err := db.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		gt := got.MustTable("t")
		ga, gs := gt.MustColumn("a"), gt.MustColumn("s")
		for i := range ints {
			if ga.Data[i] != ints[i] {
				return false
			}
			if gs.Dict.Decode(gs.Data[i]) != strsV[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func fuzzWord(rng *rand.Rand) string {
	n := rng.Intn(8) + 1
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return string(b)
}

// TestBinaryStreamBoundary makes sure reading stops cleanly at EOF with
// multiple databases in one stream.
func TestBinaryTwoDatabasesInOneStream(t *testing.T) {
	var buf bytes.Buffer
	db := sampleDB()
	if err := db.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	first, err := ReadBinary(r)
	if err != nil {
		t.Fatal(err)
	}
	assertDBEqual(t, db, first)
	// The buffered reader consumes ahead, so sequential reads from the
	// same reader are not supported — that is documented behaviour; a
	// second read from the remaining bytes must fail cleanly or parse,
	// never panic.
	_, _ = ReadBinary(r)
	_ = io.EOF
}

func TestWriteBinaryToFailingWriter(t *testing.T) {
	db := sampleDB()
	for limit := 0; limit < 60; limit += 7 {
		w := &failAfter{limit: limit}
		if err := db.WriteBinary(w); err == nil {
			t.Fatalf("write with %d-byte budget should fail", limit)
		}
	}
}

type failAfter struct {
	limit   int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		n := f.limit - f.written
		f.written = f.limit
		return n, io.ErrShortWrite
	}
	f.written += len(p)
	return len(p), nil
}

func TestReadBinaryTruncatedEverywhere(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleDB().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncating the stream anywhere must produce an error, never a panic
	// or a silent partial database.
	for cut := 0; cut < len(full)-1; cut += 11 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should fail", cut)
		}
	}
}

func TestReadBinaryCorruptDictionaryCode(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleDB().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt a byte in the tail (column data) to force an out-of-range
	// dictionary code or a structural error; accept either failure or a
	// well-formed result, but never a panic.
	for i := len(raw) - 30; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xFF
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("panic on corrupt byte %d", i)
				}
			}()
			_, _ = ReadBinary(bytes.NewReader(mut))
		}()
	}
}
