package storage

// io.go implements persistence for the columnar engine: a compact binary
// format ("CSTL") that serializes tables column-wise with their
// dictionaries, and a CSV importer compatible with cmd/ssbgen's output
// (string-typed columns are re-encoded on load).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format:
//
//	magic "CSTL" | version u32 | tableCount u32
//	per table: nameLen u32 | name | rows u32 | colCount u32
//	  per column: nameLen u32 | name | kind u32 |
//	    [kind==string: dictSize u32, per entry: len u32 | bytes]
//	    rows x u32 data
//
// All integers are little-endian.
const (
	binaryMagic   = "CSTL"
	binaryVersion = 1
)

// WriteBinary serializes the database.
func (db *Database) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	tables := db.Tables()
	if err := writeU32(uint32(len(tables))); err != nil {
		return err
	}
	for _, t := range tables {
		if err := writeStr(t.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(t.Rows())); err != nil {
			return err
		}
		cols := t.Columns()
		if err := writeU32(uint32(len(cols))); err != nil {
			return err
		}
		for _, c := range cols {
			if err := writeStr(c.Name); err != nil {
				return err
			}
			if err := writeU32(uint32(c.Kind)); err != nil {
				return err
			}
			if c.Kind == KindString {
				if err := writeU32(uint32(c.Dict.Size())); err != nil {
					return err
				}
				for code := 0; code < c.Dict.Size(); code++ {
					if err := writeStr(c.Dict.Decode(uint32(code))); err != nil {
						return err
					}
				}
			}
			if err := binary.Write(bw, binary.LittleEndian, c.Data); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a database written by WriteBinary.
func ReadBinary(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<24 {
			return "", fmt.Errorf("storage: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("storage: unsupported format version %d", version)
	}
	tableCount, err := readU32()
	if err != nil {
		return nil, err
	}
	db := NewDatabase()
	for ti := uint32(0); ti < tableCount; ti++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		rows, err := readU32()
		if err != nil {
			return nil, err
		}
		colCount, err := readU32()
		if err != nil {
			return nil, err
		}
		t := NewTable(name)
		for ci := uint32(0); ci < colCount; ci++ {
			colName, err := readStr()
			if err != nil {
				return nil, err
			}
			kindRaw, err := readU32()
			if err != nil {
				return nil, err
			}
			var dictVals []string
			if Kind(kindRaw) == KindString {
				dictSize, err := readU32()
				if err != nil {
					return nil, err
				}
				dictVals = make([]string, dictSize)
				for di := range dictVals {
					if dictVals[di], err = readStr(); err != nil {
						return nil, err
					}
				}
			}
			data := make([]uint32, rows)
			if err := binary.Read(br, binary.LittleEndian, data); err != nil {
				return nil, fmt.Errorf("storage: reading %s.%s: %w", name, colName, err)
			}
			switch Kind(kindRaw) {
			case KindInt:
				t.AddIntColumn(colName, data)
			case KindString:
				// Rebuild the string column through its dictionary so the
				// invariant (codes sorted lexicographically) is restored.
				vals := make([]string, rows)
				for i, code := range data {
					if int(code) >= len(dictVals) {
						return nil, fmt.Errorf("storage: %s.%s row %d has code %d outside dictionary", name, colName, i, code)
					}
					vals[i] = dictVals[code]
				}
				t.AddStringColumn(colName, vals)
			default:
				return nil, fmt.Errorf("storage: unknown column kind %d", kindRaw)
			}
		}
		db.Add(t)
	}
	return db, nil
}

// ReadCSV imports one relation from CSV (header row of column names; the
// typed schema is inferred: a column whose values all parse as unsigned
// integers becomes KindInt, anything else is dictionary-encoded). This is
// the inverse of cmd/ssbgen's writer.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readCSVLine(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("storage: empty CSV header")
	}
	cols := make([][]string, len(header))
	for {
		rec, err := readCSVLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("storage: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		for i, v := range rec {
			cols[i] = append(cols[i], v)
		}
	}

	t := NewTable(name)
	for i, colName := range header {
		if data, ok := parseUintColumn(cols[i]); ok {
			t.AddIntColumn(colName, data)
		} else {
			t.AddStringColumn(colName, cols[i])
		}
	}
	return t, nil
}

func readCSVLine(br *bufio.Reader) ([]string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line == "" {
		return nil, io.EOF
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return nil, io.EOF
	}
	return strings.Split(line, ","), nil
}

func parseUintColumn(vals []string) ([]uint32, bool) {
	out := make([]uint32, len(vals))
	for i, v := range vals {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return nil, false
		}
		out[i] = uint32(n)
	}
	return out, true
}
