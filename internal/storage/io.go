package storage

// io.go implements persistence for the columnar engine: a compact binary
// format ("CSTL") that serializes tables column-wise with their
// dictionaries, and a CSV importer compatible with cmd/ssbgen's output
// (string-typed columns are re-encoded on load).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format:
//
//	magic "CSTL" | version u32 | tableCount u32
//	per table: nameLen u32 | name | rows u32 | colCount u32
//	  per column: nameLen u32 | name | kind u32 |
//	    [kind==string: dictSize u32, per entry: len u32 | bytes]
//	    rows x u32 data
//
// All integers are little-endian.
const (
	binaryMagic   = "CSTL"
	binaryVersion = 1

	// maxStrLen bounds every length-prefixed string in the format (names
	// and dictionary entries). Far above anything a real schema produces,
	// low enough that a corrupt length cannot force a giant allocation.
	maxStrLen = 1 << 24
	// maxCount bounds table and column counts: they only gate loops, but a
	// corrupt count should fail with a format error, not a long stall.
	maxCount = 1 << 20
	// readChunkRows is the allocation granularity for column data. Corrupt
	// (or truncated) inputs claiming billions of rows fail at the first
	// short chunk instead of first allocating rows*4 bytes.
	readChunkRows = 1 << 16
)

// WriteBinary serializes the database. Every count and length in the format
// is a u32; writing a database that cannot round-trip (2^32 or more rows,
// columns, dictionary entries, or a longer string) fails loudly instead of
// silently truncating the count.
func (db *Database) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	checkedU32 := func(n int, what string) (uint32, error) {
		if n < 0 || int64(n) > int64(^uint32(0)) {
			return 0, fmt.Errorf("storage: %s %d does not fit the format's u32", what, n)
		}
		return uint32(n), nil
	}
	writeStr := func(s string) error {
		n, err := checkedU32(len(s), "string length")
		if err != nil {
			return err
		}
		if err := writeU32(n); err != nil {
			return err
		}
		_, err = bw.WriteString(s)
		return err
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	tables := db.Tables()
	tc, err := checkedU32(len(tables), "table count")
	if err != nil {
		return err
	}
	if err := writeU32(tc); err != nil {
		return err
	}
	for _, t := range tables {
		if err := writeStr(t.Name); err != nil {
			return err
		}
		rows, err := checkedU32(t.Rows(), "row count of "+t.Name)
		if err != nil {
			return err
		}
		if err := writeU32(rows); err != nil {
			return err
		}
		cols := t.Columns()
		cc, err := checkedU32(len(cols), "column count of "+t.Name)
		if err != nil {
			return err
		}
		if err := writeU32(cc); err != nil {
			return err
		}
		for _, c := range cols {
			if err := writeStr(c.Name); err != nil {
				return err
			}
			if err := writeU32(uint32(c.Kind)); err != nil {
				return err
			}
			if c.Kind == KindString {
				ds, err := checkedU32(c.Dict.Size(), "dictionary size of "+t.Name+"."+c.Name)
				if err != nil {
					return err
				}
				if err := writeU32(ds); err != nil {
					return err
				}
				for code := 0; code < c.Dict.Size(); code++ {
					if err := writeStr(c.Dict.Decode(uint32(code))); err != nil {
						return err
					}
				}
			}
			if err := binary.Write(bw, binary.LittleEndian, c.Data); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a database written by WriteBinary. The input is
// untrusted: every count and length field is sanity-checked before it
// drives an allocation, column data is read in bounded chunks so a corrupt
// row count fails on truncation instead of exhausting memory, and
// duplicate table/column names are format errors rather than panics.
func ReadBinary(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > maxStrLen {
			return "", fmt.Errorf("storage: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if m, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("storage: string truncated after %d of %d bytes: %w", m, n, err)
		}
		return string(buf), nil
	}
	// readColumnData reads rows u32 values in bounded chunks: the largest
	// single allocation is readChunkRows entries, so a corrupt row count
	// backed by a short file errors out early.
	readColumnData := func(rows uint32, what string) ([]uint32, error) {
		capHint := rows
		if capHint > readChunkRows {
			capHint = readChunkRows
		}
		data := make([]uint32, 0, capHint)
		for remaining := rows; remaining > 0; {
			n := remaining
			if n > readChunkRows {
				n = readChunkRows
			}
			chunk := make([]uint32, n)
			if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
				return nil, fmt.Errorf("storage: %s truncated after %d of %d rows: %w",
					what, len(data), rows, err)
			}
			data = append(data, chunk...)
			remaining -= n
		}
		return data, nil
	}

	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("storage: unsupported format version %d", version)
	}
	tableCount, err := readU32()
	if err != nil {
		return nil, err
	}
	if tableCount > maxCount {
		return nil, fmt.Errorf("storage: unreasonable table count %d", tableCount)
	}
	db := NewDatabase()
	for ti := uint32(0); ti < tableCount; ti++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		if db.Table(name) != nil {
			return nil, fmt.Errorf("storage: duplicate table %q in input", name)
		}
		rows, err := readU32()
		if err != nil {
			return nil, err
		}
		colCount, err := readU32()
		if err != nil {
			return nil, err
		}
		if colCount > maxCount {
			return nil, fmt.Errorf("storage: unreasonable column count %d in table %q", colCount, name)
		}
		t := NewTable(name)
		for ci := uint32(0); ci < colCount; ci++ {
			colName, err := readStr()
			if err != nil {
				return nil, err
			}
			if t.Column(colName) != nil {
				return nil, fmt.Errorf("storage: duplicate column %s.%s in input", name, colName)
			}
			kindRaw, err := readU32()
			if err != nil {
				return nil, err
			}
			if k := Kind(kindRaw); k != KindInt && k != KindString {
				return nil, fmt.Errorf("storage: unknown column kind %d for %s.%s", kindRaw, name, colName)
			}
			var dictVals []string
			if Kind(kindRaw) == KindString {
				dictSize, err := readU32()
				if err != nil {
					return nil, err
				}
				// Entries are length-prefixed, so truncation surfaces at the
				// first short entry; growing incrementally keeps a corrupt
				// dictSize from allocating gigabytes of headers up front.
				capHint := dictSize
				if capHint > readChunkRows {
					capHint = readChunkRows
				}
				dictVals = make([]string, 0, capHint)
				for di := uint32(0); di < dictSize; di++ {
					s, err := readStr()
					if err != nil {
						return nil, fmt.Errorf("storage: dictionary of %s.%s truncated after %d of %d entries: %w",
							name, colName, di, dictSize, err)
					}
					dictVals = append(dictVals, s)
				}
			}
			data, err := readColumnData(rows, name+"."+colName)
			if err != nil {
				return nil, err
			}
			switch Kind(kindRaw) {
			case KindInt:
				t.AddIntColumn(colName, data)
			case KindString:
				// Rebuild the string column through its dictionary so the
				// invariant (codes sorted lexicographically) is restored.
				vals := make([]string, rows)
				for i, code := range data {
					if int(code) >= len(dictVals) {
						return nil, fmt.Errorf("storage: %s.%s row %d has code %d outside dictionary", name, colName, i, code)
					}
					vals[i] = dictVals[code]
				}
				t.AddStringColumn(colName, vals)
			}
		}
		db.Add(t)
	}
	return db, nil
}

// ReadCSV imports one relation from CSV (header row of column names; the
// typed schema is inferred: a column whose values all parse as unsigned
// integers becomes KindInt, anything else is dictionary-encoded). This is
// the inverse of cmd/ssbgen's writer.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readCSVLine(br)
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("storage: empty CSV header")
	}
	seen := make(map[string]bool, len(header))
	for _, h := range header {
		if seen[h] {
			return nil, fmt.Errorf("storage: duplicate CSV column %q", h)
		}
		seen[h] = true
	}
	cols := make([][]string, len(header))
	for {
		rec, err := readCSVLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("storage: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		for i, v := range rec {
			cols[i] = append(cols[i], v)
		}
	}

	t := NewTable(name)
	for i, colName := range header {
		if data, ok := parseUintColumn(cols[i]); ok {
			t.AddIntColumn(colName, data)
		} else {
			t.AddStringColumn(colName, cols[i])
		}
	}
	return t, nil
}

func readCSVLine(br *bufio.Reader) ([]string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line == "" {
		return nil, io.EOF
	}
	if err != nil && err != io.EOF {
		return nil, err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return nil, io.EOF
	}
	return strings.Split(line, ","), nil
}

func parseUintColumn(vals []string) ([]uint32, bool) {
	out := make([]uint32, len(vals))
	for i, v := range vals {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return nil, false
		}
		out[i] = uint32(n)
	}
	return out, true
}
