// Package storage implements Castle's columnar storage engine. Relations
// are stored column-wise; every column is a dense []uint32, CAPE's default
// data size. String columns used in selection and join predicates are
// dictionary-encoded to 32-bit codes at load time, matching the paper's SSB
// modification (§4.1: "we compress string columns ... using standard
// encoding techniques to 32-bit values").
package storage

import (
	"fmt"
	"sort"
)

// Kind distinguishes plain integer columns from dictionary-encoded strings.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota
	KindString
)

// Dictionary maps strings to dense 32-bit codes. Codes are assigned in
// sorted order of first full-load contents so that range predicates on
// encoded columns remain meaningful where the benchmark needs them.
type Dictionary struct {
	vals []string
	idx  map[string]uint32
}

// NewDictionary builds a dictionary over the distinct values of vals,
// assigning codes in lexicographic order.
func NewDictionary(vals []string) *Dictionary {
	set := make(map[string]struct{})
	for _, v := range vals {
		set[v] = struct{}{}
	}
	uniq := make([]string, 0, len(set))
	for v := range set {
		uniq = append(uniq, v)
	}
	sort.Strings(uniq)
	d := &Dictionary{vals: uniq, idx: make(map[string]uint32, len(uniq))}
	for i, v := range uniq {
		d.idx[v] = uint32(i)
	}
	return d
}

// Encode returns the code for s and whether it exists.
func (d *Dictionary) Encode(s string) (uint32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// Decode returns the string for code c.
func (d *Dictionary) Decode(c uint32) string {
	if int(c) >= len(d.vals) {
		return fmt.Sprintf("<code %d>", c)
	}
	return d.vals[c]
}

// Size returns the number of distinct values.
func (d *Dictionary) Size() int { return len(d.vals) }

// Bounds maps a lexicographic string range [lo, hi] to the corresponding
// code range. Because codes are assigned in sorted order, the set of codes
// in [loCode, hiCode] is exactly the set of values in [lo, hi]. ok is false
// when no dictionary value falls in the range.
func (d *Dictionary) Bounds(lo, hi string) (loCode, hiCode uint32, ok bool) {
	i := sort.SearchStrings(d.vals, lo)                                       // first value >= lo
	j := sort.Search(len(d.vals), func(k int) bool { return d.vals[k] > hi }) // first value > hi
	if i >= j {
		return 0, 0, false
	}
	return uint32(i), uint32(j - 1), true
}

// Column is a fixed-length 32-bit column with load-time min/max statistics.
type Column struct {
	Name string
	Kind Kind
	Data []uint32
	Dict *Dictionary // non-nil only for KindString

	Min, Max uint32
}

// computeStats refreshes the column's min/max.
func (c *Column) computeStats() {
	if len(c.Data) == 0 {
		c.Min, c.Max = 0, 0
		return
	}
	c.Min, c.Max = c.Data[0], c.Data[0]
	for _, v := range c.Data {
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
}

// BitWidth returns the number of bits needed to represent the column's
// maximum value — the statistic ABA consumes to set instruction bitwidths
// without a discovery phase (§5.1).
func (c *Column) BitWidth() int {
	w, m := 0, c.Max
	for m != 0 {
		w++
		m >>= 1
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Table is a named relation of equal-length columns.
type Table struct {
	Name string
	cols []*Column
	byN  map[string]*Column
	rows int
}

// NewTable returns an empty relation.
func NewTable(name string) *Table {
	return &Table{Name: name, byN: make(map[string]*Column)}
}

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Columns returns the columns in definition order.
func (t *Table) Columns() []*Column { return t.cols }

// AddIntColumn attaches a plain integer column. All columns of a table must
// have the same length.
func (t *Table) AddIntColumn(name string, data []uint32) *Column {
	return t.addColumn(&Column{Name: name, Kind: KindInt, Data: data})
}

// AddStringColumn dictionary-encodes vals and attaches the encoded column.
func (t *Table) AddStringColumn(name string, vals []string) *Column {
	d := NewDictionary(vals)
	data := make([]uint32, len(vals))
	for i, v := range vals {
		data[i], _ = d.Encode(v)
	}
	return t.addColumn(&Column{Name: name, Kind: KindString, Data: data, Dict: d})
}

func (t *Table) addColumn(c *Column) *Column {
	if _, dup := t.byN[c.Name]; dup {
		panic(fmt.Sprintf("storage: duplicate column %s.%s", t.Name, c.Name))
	}
	if len(t.cols) > 0 && len(c.Data) != t.rows {
		panic(fmt.Sprintf("storage: column %s.%s has %d rows, table has %d",
			t.Name, c.Name, len(c.Data), t.rows))
	}
	if len(t.cols) == 0 {
		t.rows = len(c.Data)
	}
	c.computeStats()
	t.cols = append(t.cols, c)
	t.byN[c.Name] = c
	return c
}

// SelectRows projects the given row indices into a new relation named
// name. Projected columns keep the parent's Kind and share its Dictionary
// pointer, so codes in one projection stay comparable with codes in any
// other projection of the same parent — the property a partitioned fact
// table needs for cross-shard aggregate merges. Row order (and any
// duplicates) is preserved; indices must be in range.
func (t *Table) SelectRows(name string, rows []int) *Table {
	out := NewTable(name)
	for _, c := range t.cols {
		data := make([]uint32, len(rows))
		for i, r := range rows {
			data[i] = c.Data[r]
		}
		out.addColumn(&Column{Name: c.Name, Kind: c.Kind, Data: data, Dict: c.Dict})
	}
	return out
}

// Column returns the named column, or nil if absent.
func (t *Table) Column(name string) *Column { return t.byN[name] }

// MustColumn returns the named column or panics.
func (t *Table) MustColumn(name string) *Column {
	c := t.byN[name]
	if c == nil {
		panic(fmt.Sprintf("storage: no column %s.%s", t.Name, name))
	}
	return c
}

// SizeBytes returns the in-memory size of the relation's column data.
func (t *Table) SizeBytes() int64 { return int64(len(t.cols)) * int64(t.rows) * 4 }

// Database is a named collection of relations.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a relation; it panics on duplicates.
func (db *Database) Add(t *Table) {
	if _, dup := db.tables[t.Name]; dup {
		panic(fmt.Sprintf("storage: duplicate table %s", t.Name))
	}
	db.tables[t.Name] = t
	db.order = append(db.order, t.Name)
}

// Put adds the relation, replacing any existing one of the same name in
// place (creation order is preserved on replacement). Re-importing a
// refreshed extract under the same name goes through here; statistics and
// cached plans bound against the old contents are the caller's to
// invalidate.
func (db *Database) Put(t *Table) {
	if _, ok := db.tables[t.Name]; ok {
		db.tables[t.Name] = t
		return
	}
	db.Add(t)
}

// Table returns the named relation, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// MustTable returns the named relation or panics.
func (db *Database) MustTable(name string) *Table {
	t := db.tables[name]
	if t == nil {
		panic(fmt.Sprintf("storage: no table %s", name))
	}
	return t
}

// Tables returns relations in registration order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, len(db.order))
	for i, n := range db.order {
		out[i] = db.tables[n]
	}
	return out
}

// FindColumn locates an unqualified column name across all relations,
// returning its table. SSB (like most star schemas) prefixes column names
// per table, so unqualified names are unambiguous; ambiguity is an error.
func (db *Database) FindColumn(name string) (*Table, *Column, error) {
	var ft *Table
	var fc *Column
	for _, tn := range db.order {
		if c := db.tables[tn].Column(name); c != nil {
			if fc != nil {
				return nil, nil, fmt.Errorf("storage: column %s is ambiguous (%s and %s)", name, ft.Name, tn)
			}
			ft, fc = db.tables[tn], c
		}
	}
	if fc == nil {
		return nil, nil, fmt.Errorf("storage: no column %s in any table", name)
	}
	return ft, fc, nil
}
