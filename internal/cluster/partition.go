// Package cluster is Castle's scatter-gather scale-out tier: it partitions
// the fact table across N simulated Castle nodes (dimension tables are
// replicated to every node, the usual star-schema deployment), fans a
// compiled query out to one replica per shard, and merges the per-shard
// partial aggregates with the same deterministic accumulator the
// morsel-parallel sweeps use — so results are bit-identical to a
// single-node run at every N. Cross-node shuffle traffic is modeled as a
// first-class cost alongside the per-node cycle accounting, mirroring how
// Fork/TileGroup splits elapsed versus work cycle views across tiles.
package cluster

import (
	"fmt"
	"sort"

	"castle/internal/storage"
)

// Scheme selects how fact rows map to shards.
type Scheme int

// Partitioning schemes.
const (
	// SchemeHash spreads rows by a multiplicative hash of the partition
	// key. Load balances regardless of key skew; no shard pruning.
	SchemeHash Scheme = iota
	// SchemeRange assigns contiguous key ranges to shards (equal row
	// counts, split points at sorted-key quantiles). Queries predicated on
	// the partition key can prune shards whose [min, max] cannot match.
	SchemeRange
)

// String names the scheme as accepted by ParseScheme.
func (s Scheme) String() string {
	if s == SchemeRange {
		return "range"
	}
	return "hash"
}

// ParseScheme parses a partitioning scheme name.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "hash", "":
		return SchemeHash, nil
	case "range":
		return SchemeRange, nil
	}
	return 0, fmt.Errorf("cluster: unknown partition scheme %q (want hash or range)", s)
}

// Partitioning is the sharded layout of one database: per-shard databases
// (fact shard plus replicated dimensions) and, for SchemeRange, the
// per-shard partition-key bounds pruning consults.
type Partitioning struct {
	Scheme Scheme
	Fact   string // partitioned relation
	Key    string // partition-key column on Fact
	Shards []*storage.Database

	// KeyMin, KeyMax bound the partition-key values on each shard (valid
	// only when the shard is non-empty). Empty marks shards that received
	// no fact rows.
	KeyMin, KeyMax []uint32
	Empty          []bool
}

// Partition shards db's fact table n ways on the given key column.
// Dimension tables are shared by reference — they are immutable at query
// time — and fact shards share the parent's column dictionaries, so
// encoded values remain comparable across shards.
func Partition(db *storage.Database, fact, key string, scheme Scheme, n int) (*Partitioning, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d is not positive", n)
	}
	ft := db.Table(fact)
	if ft == nil {
		return nil, fmt.Errorf("cluster: fact table %q does not exist", fact)
	}
	kc := ft.Column(key)
	if kc == nil {
		return nil, fmt.Errorf("cluster: partition key %s.%s does not exist in the schema", fact, key)
	}

	assign := make([][]int, n)
	switch scheme {
	case SchemeHash:
		for i, v := range kc.Data {
			assign[hashShard(v, n)] = append(assign[hashShard(v, n)], i)
		}
	case SchemeRange:
		// Sort row indices by (key, index), cut into n equal-count chunks,
		// then restore the original scan order within each chunk so a
		// shard's sweep is deterministic and row-order preserving.
		idx := make([]int, len(kc.Data))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if kc.Data[idx[a]] != kc.Data[idx[b]] {
				return kc.Data[idx[a]] < kc.Data[idx[b]]
			}
			return idx[a] < idx[b]
		})
		base, rem := len(idx)/n, len(idx)%n
		at := 0
		for s := 0; s < n; s++ {
			size := base
			if s < rem {
				size++
			}
			chunk := append([]int(nil), idx[at:at+size]...)
			at += size
			sort.Ints(chunk)
			assign[s] = chunk
		}
	default:
		return nil, fmt.Errorf("cluster: unknown partition scheme %d", scheme)
	}

	p := &Partitioning{
		Scheme: scheme, Fact: fact, Key: key,
		Shards: make([]*storage.Database, n),
		KeyMin: make([]uint32, n), KeyMax: make([]uint32, n),
		Empty: make([]bool, n),
	}
	for s := 0; s < n; s++ {
		sdb := storage.NewDatabase()
		for _, t := range db.Tables() {
			if t.Name == fact {
				sdb.Add(t.SelectRows(fact, assign[s]))
			} else {
				sdb.Add(t)
			}
		}
		p.Shards[s] = sdb
		p.Empty[s] = len(assign[s]) == 0
		first := true
		for _, r := range assign[s] {
			v := kc.Data[r]
			if first || v < p.KeyMin[s] {
				p.KeyMin[s] = v
			}
			if first || v > p.KeyMax[s] {
				p.KeyMax[s] = v
			}
			first = false
		}
	}
	return p, nil
}

// hashShard maps a key value to a shard by Knuth multiplicative hashing —
// cheap, deterministic, and spreading even for the dense sequential key
// domains dictionary encoding produces.
func hashShard(v uint32, n int) int {
	return int((uint64(v) * 2654435761) % uint64(n))
}
