package cluster

import (
	"context"
	"strings"
	"testing"

	"castle/internal/exec"
	"castle/internal/plan"
	"castle/internal/sql"
	"castle/internal/ssb"
	"castle/internal/storage"
)

func testDB(t *testing.T) *storage.Database {
	t.Helper()
	return ssb.Generate(ssb.Config{SF: 0.002, Seed: 1})
}

func bind(t *testing.T, db *storage.Database, sqlText string) *plan.Query {
	t.Helper()
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		t.Fatalf("parse %q: %v", sqlText, err)
	}
	q, err := plan.Bind(stmt, db)
	if err != nil {
		t.Fatalf("bind %q: %v", sqlText, err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero nodes", Config{Nodes: 0}, "shard count"},
		{"negative nodes", Config{Nodes: -3}, "shard count"},
		{"negative replicas", Config{Nodes: 2, Replicas: -1}, "replica count"},
		{"bad key", Config{Nodes: 2, Key: "lo_nope"}, "partition key"},
		{"bad fact", Config{Nodes: 2, Fact: "nope"}, "fact table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(db, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) err = %v, want mention of %q", tc.cfg, err, tc.want)
			}
		})
	}
}

// TestShardedMatchesSingleNode asserts the core contract: every SSB query
// returns a bit-identical relation at every shard count, for both schemes,
// on every device path.
func TestShardedMatchesSingleNode(t *testing.T) {
	db := testDB(t)
	queries := ssb.Queries()
	for _, scheme := range []Scheme{SchemeHash, SchemeRange} {
		for _, n := range []int{1, 2, 4} {
			coord, err := New(db, Config{Nodes: n, Replicas: 1, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			for _, dev := range []string{"cpu", "cape"} {
				for _, q := range queries {
					bq := bind(t, db, q.SQL)
					want := exec.Reference(bq, db)
					got, rep, err := coord.Run(context.Background(), bq, ExecOptions{Device: dev})
					if err != nil {
						t.Fatalf("%s n=%d %s Q%d: %v", scheme, n, dev, q.Num, err)
					}
					if !got.Equal(want) {
						t.Fatalf("%s n=%d %s Q%d: sharded result differs from reference", scheme, n, dev, q.Num)
					}
					if rep.Breakdown.SumCycles() != rep.Breakdown.TotalCycles {
						t.Fatalf("%s n=%d %s Q%d: breakdown rows sum %d != total %d",
							scheme, n, dev, q.Num, rep.Breakdown.SumCycles(), rep.Breakdown.TotalCycles)
					}
					if rep.Breakdown.TotalCycles != rep.Stats.ElapsedCycles {
						t.Fatalf("%s n=%d %s Q%d: breakdown total %d != elapsed %d",
							scheme, n, dev, q.Num, rep.Breakdown.TotalCycles, rep.Stats.ElapsedCycles)
					}
					if rep.Stats.WorkCycles < rep.Stats.ElapsedCycles {
						t.Fatalf("%s n=%d %s Q%d: work %d < elapsed %d",
							scheme, n, dev, q.Num, rep.Stats.WorkCycles, rep.Stats.ElapsedCycles)
					}
				}
			}
		}
	}
}

// TestDistributedAggregates exercises the non-distributive aggregates the
// shard rewrite has to handle specially: AVG's floor division over the
// merged row count and COUNT(DISTINCT)'s cross-shard value-set union.
func TestDistributedAggregates(t *testing.T) {
	db := testDB(t)
	q := &plan.Query{
		Fact:    "lineorder",
		GroupBy: []plan.ColRef{{Table: "lineorder", Column: "lo_discount"}},
		Aggs: []plan.AggExpr{
			{Kind: plan.AggAvg, A: "lo_extendedprice"},
			{Kind: plan.AggCountDistinct, A: "lo_quantity"},
			{Kind: plan.AggMin, A: "lo_revenue"},
			{Kind: plan.AggMax, A: "lo_revenue"},
			{Kind: plan.AggCount},
		},
	}
	want := exec.Reference(q, db)
	for _, scheme := range []Scheme{SchemeHash, SchemeRange} {
		for _, n := range []int{2, 4} {
			coord, err := New(db, Config{Nodes: n, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := coord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
			if err != nil {
				t.Fatalf("%s n=%d: %v", scheme, n, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s n=%d: AVG/COUNT DISTINCT merge diverged from reference", scheme, n)
			}
		}
	}
}

// TestGrandAggregateZeroRow: a grand aggregate whose predicate matches no
// rows must still return the single zero row, even when pruning removes
// every shard.
func TestGrandAggregateZeroRow(t *testing.T) {
	db := testDB(t)
	q := &plan.Query{
		Fact:      "lineorder",
		FactPreds: []plan.Predicate{{Table: "lineorder", Column: "lo_orderdate", Op: plan.PredGT, Value: ^uint32(0) - 1}},
		Aggs:      []plan.AggExpr{{Kind: plan.AggSumCol, A: "lo_revenue"}, {Kind: plan.AggCount}},
	}
	want := exec.Reference(q, db)
	if len(want.Rows) != 1 {
		t.Fatalf("reference grand aggregate rows = %d, want 1", len(want.Rows))
	}
	for _, scheme := range []Scheme{SchemeHash, SchemeRange} {
		coord, err := New(db, Config{Nodes: 4, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := coord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: zero-row grand aggregate diverged", scheme)
		}
		if scheme == SchemeRange && rep.Stats.PrunedShards != 4 {
			t.Fatalf("range: pruned %d shards, want 4", rep.Stats.PrunedShards)
		}
	}
}

// TestRangePruning: a tight partition-key predicate must prune range
// shards, the pruning must be visible in the plan, and the pruned result
// must still match single-node.
func TestRangePruning(t *testing.T) {
	db := testDB(t)
	kc := db.MustTable("lineorder").MustColumn("lo_orderdate")
	q := &plan.Query{
		Fact:      "lineorder",
		FactPreds: []plan.Predicate{{Table: "lineorder", Column: "lo_orderdate", Op: plan.PredLE, Value: kc.Min}},
		Aggs:      []plan.AggExpr{{Kind: plan.AggSumCol, A: "lo_revenue"}},
	}
	coord, err := New(db, Config{Nodes: 4, Scheme: SchemeRange})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := coord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(exec.Reference(q, db)) {
		t.Fatal("pruned execution diverged from reference")
	}
	if rep.Stats.PrunedShards == 0 {
		t.Fatal("expected key-range pruning with a min-key predicate")
	}
	if !strings.Contains(rep.Plan, "pruned (key range)") {
		t.Fatalf("plan does not surface pruning:\n%s", rep.Plan)
	}
	// Hash partitioning cannot prune: the same query must execute all shards.
	hcoord, err := New(db, Config{Nodes: 4, Scheme: SchemeHash})
	if err != nil {
		t.Fatal(err)
	}
	_, hrep, err := hcoord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if hrep.Stats.PrunedShards != 0 {
		t.Fatalf("hash scheme pruned %d shards", hrep.Stats.PrunedShards)
	}
}

// TestReplicaLoadBalancing: with R=2 and an artificially busy replica 0,
// the coordinator must route to replica 1.
func TestReplicaLoadBalancing(t *testing.T) {
	db := testDB(t)
	coord, err := New(db, Config{Nodes: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	coord.Node(0, 0).depth.Add(5)
	defer coord.Node(0, 0).depth.Add(-5)
	q := bind(t, db, ssb.Queries()[0].SQL)
	_, rep, err := coord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.NodeNames[0] != "shard0/r1" {
		t.Fatalf("shard 0 routed to %s, want the idle replica shard0/r1", rep.Stats.NodeNames[0])
	}
	if rep.Stats.NodeNames[1] != "shard1/r0" {
		t.Fatalf("shard 1 routed to %s, want shard1/r0", rep.Stats.NodeNames[1])
	}
}

// TestEmptyShards: more hash shards than distinct partition-key values
// leaves some shards empty; execution must stay correct through them.
func TestEmptyShards(t *testing.T) {
	sdb := storage.NewDatabase()
	ft := storage.NewTable("lineorder")
	ft.AddIntColumn("lo_orderdate", []uint32{7, 7, 7, 7})
	ft.AddIntColumn("lo_revenue", []uint32{10, 20, 30, 40})
	sdb.Add(ft)
	q := &plan.Query{
		Fact: "lineorder",
		Aggs: []plan.AggExpr{{Kind: plan.AggSumCol, A: "lo_revenue"}, {Kind: plan.AggCount}},
	}
	want := exec.Reference(q, sdb)
	for _, scheme := range []Scheme{SchemeHash, SchemeRange} {
		coord, err := New(sdb, Config{Nodes: 4, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := coord.Run(context.Background(), q, ExecOptions{Device: "cpu"})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: result over empty shards diverged", scheme)
		}
	}
}

func TestParseScheme(t *testing.T) {
	if s, err := ParseScheme(""); err != nil || s != SchemeHash {
		t.Fatalf("ParseScheme(\"\") = %v, %v", s, err)
	}
	if s, err := ParseScheme("range"); err != nil || s != SchemeRange {
		t.Fatalf("ParseScheme(range) = %v, %v", s, err)
	}
	if _, err := ParseScheme("modulo"); err == nil {
		t.Fatal("ParseScheme(modulo) should fail")
	}
}
