package cluster

// node.go models one Castle node of the cluster: its shard database, its
// own statistics catalog, and a single-admission execution queue. Every
// statement runs on fresh simulated engines (exactly like the single-node
// facade), so nodes are safe under concurrent coordinator traffic; the
// queue-depth counter is what the coordinator's replica load balancer
// reads.

import (
	"context"
	"fmt"
	"sync/atomic"

	"castle/internal/baseline"
	"castle/internal/cape"
	"castle/internal/exec"
	"castle/internal/optimizer"
	"castle/internal/plan"
	"castle/internal/stats"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// ExecOptions selects how shard statements execute on every node.
type ExecOptions struct {
	// Device is "cape", "cpu" or "hybrid" (empty selects "hybrid").
	Device string
	// PerOperator splits hybrid execution per operator instead of routing
	// the whole query to one device.
	PerOperator bool
	// Config is the CAPE design point (zero MAXVL selects the default
	// enhanced configuration).
	Config cape.Config
	// Parallelism is the per-node fact-sweep fan-out (tiles or cores).
	Parallelism int
}

func (o ExecOptions) withDefaults() (ExecOptions, error) {
	if o.Device == "" {
		o.Device = "hybrid"
	}
	switch o.Device {
	case "cape", "cpu", "hybrid":
	default:
		return o, fmt.Errorf("cluster: unknown device %q (want cape, cpu or hybrid)", o.Device)
	}
	if o.Config.MAXVL == 0 {
		o.Config = cape.DefaultConfig().WithEnhancements()
	}
	return o, nil
}

// NodeCost is one node's simulated cost for a shard program: the elapsed
// view (critical path of its fact sweep), the work view (summed over
// tiles), DRAM traffic, and simulated seconds.
type NodeCost struct {
	Device     string
	Cycles     int64
	WorkCycles int64
	BytesMoved int64
	Seconds    float64
}

// Node is one simulated Castle node: a replica of one shard with its own
// catalog and a one-at-a-time execution queue.
type Node struct {
	Name    string
	Shard   int
	Replica int

	db  *storage.Database
	cat *stats.Catalog

	sem   chan struct{} // capacity 1: one executing statement per node
	depth atomic.Int64  // queued + executing
	gauge *telemetry.Gauge
}

func newNode(shard, replica int, db *storage.Database, reg *telemetry.Registry) *Node {
	n := &Node{
		Name:    fmt.Sprintf("shard%d/r%d", shard, replica),
		Shard:   shard,
		Replica: replica,
		db:      db,
		cat:     stats.Collect(db),
		sem:     make(chan struct{}, 1),
	}
	if reg != nil {
		n.gauge = reg.Gauge(telemetry.MetricNodeQueueDepth,
			"Queries queued or executing on one simulated cluster node.",
			telemetry.L("node", n.Name))
	}
	return n
}

// QueueDepth reports queries queued or executing on this node.
func (n *Node) QueueDepth() int64 { return n.depth.Load() }

// execute runs a shard program (the rewritten partial query plus any
// COUNT(DISTINCT) expansion statements) through the node's queue and
// returns one result per statement with the summed node cost.
func (n *Node) execute(ctx context.Context, stmts []*plan.Query, o ExecOptions) ([]*exec.Result, NodeCost, error) {
	n.depth.Add(1)
	if n.gauge != nil {
		n.gauge.Add(1)
	}
	defer func() {
		n.depth.Add(-1)
		if n.gauge != nil {
			n.gauge.Add(-1)
		}
	}()

	select {
	case n.sem <- struct{}{}:
		defer func() { <-n.sem }()
	case <-ctx.Done():
		return nil, NodeCost{}, ctx.Err()
	}

	var cost NodeCost
	out := make([]*exec.Result, len(stmts))
	for i, q := range stmts {
		res, c, err := n.run(ctx, q, o)
		if err != nil {
			return nil, NodeCost{}, fmt.Errorf("%s: %w", n.Name, err)
		}
		out[i] = res
		cost.Device = c.Device
		cost.Cycles += c.Cycles
		cost.WorkCycles += c.WorkCycles
		cost.BytesMoved += c.BytesMoved
		cost.Seconds += c.Seconds
	}
	return out, cost, nil
}

// run executes one statement on fresh engines, mirroring the single-node
// facade's device paths.
func (n *Node) run(ctx context.Context, q *plan.Query, o ExecOptions) (*exec.Result, NodeCost, error) {
	if o.Device == "cpu" {
		cpu := baseline.New(baseline.DefaultConfig())
		x := exec.NewCPUExec(cpu)
		x.SetParallelism(o.Parallelism)
		res, err := x.RunContext(ctx, q, n.db)
		if err != nil {
			return nil, NodeCost{}, err
		}
		return res, NodeCost{
			Device:     "CPU",
			Cycles:     cpu.Cycles(),
			WorkCycles: x.ParallelStats().WorkCycles,
			BytesMoved: cpu.Mem().BytesMoved(),
			Seconds:    cpu.Seconds(),
		}, nil
	}

	cfg := o.Config
	phys, err := optimizer.Optimize(q, n.cat, cfg.MAXVL)
	if err != nil {
		return nil, NodeCost{}, err
	}

	if o.Device == "hybrid" {
		h := exec.NewDefaultHybrid(cfg, n.cat)
		h.SetParallelism(o.Parallelism)
		if o.PerOperator {
			pp := optimizer.PlacePlan(phys, n.cat, cfg.MAXVL)
			res, _, err := h.RunPlacedContext(ctx, pp, n.db)
			if err != nil {
				return nil, NodeCost{}, err
			}
			capeCy, cpuCy := h.Placed().DeviceCycles()
			return res, NodeCost{
				Device: "CAPE+CPU",
				Cycles: capeCy + cpuCy,
				// The placed pipeline runs its stages serially across
				// devices, so elapsed and work coincide.
				WorkCycles: capeCy + cpuCy,
				BytesMoved: h.Castle().Engine().Mem().BytesMoved() + h.CPUExec().CPU().Mem().BytesMoved(),
				Seconds:    h.Castle().Engine().Stats().Seconds(cfg.ClockHz) + h.CPUExec().CPU().Seconds(),
			}, nil
		}
		res, dev, err := h.RunContext(ctx, phys, n.db)
		if err != nil {
			return nil, NodeCost{}, err
		}
		if dev == exec.DeviceCPU {
			cpu := h.CPUExec().CPU()
			return res, NodeCost{
				Device:     "CPU",
				Cycles:     cpu.Cycles(),
				WorkCycles: h.CPUExec().ParallelStats().WorkCycles,
				BytesMoved: cpu.Mem().BytesMoved(),
				Seconds:    cpu.Seconds(),
			}, nil
		}
		st := h.Castle().Engine().Stats()
		return res, NodeCost{
			Device:     "CAPE",
			Cycles:     st.TotalCycles(),
			WorkCycles: h.Castle().ParallelStats().WorkCycles,
			BytesMoved: h.Castle().Engine().Mem().BytesMoved(),
			Seconds:    st.Seconds(cfg.ClockHz),
		}, nil
	}

	eng := cape.New(cfg)
	opts := exec.DefaultCastleOptions()
	opts.Parallelism = o.Parallelism
	cas := exec.NewCastle(eng, n.cat, opts)
	res, err := cas.RunContext(ctx, phys, n.db)
	if err != nil {
		return nil, NodeCost{}, err
	}
	st := eng.Stats()
	return res, NodeCost{
		Device:     "CAPE",
		Cycles:     st.TotalCycles(),
		WorkCycles: cas.ParallelStats().WorkCycles,
		BytesMoved: eng.Mem().BytesMoved(),
		Seconds:    st.Seconds(cfg.ClockHz),
	}, nil
}
