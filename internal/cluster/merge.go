package cluster

// merge.go is the scatter-gather aggregate protocol: how a bound query is
// rewritten into per-shard partial statements, and how the coordinator
// folds the shipped partials back into the exact single-node result.
//
// The rewrite keeps every aggregate distributive:
//
//   - AVG(x) ships as SUM(x); the coordinator divides by the merged row
//     count (integer floor), exactly as the single-node accumulator does.
//   - COUNT(DISTINCT x) cannot merge from per-shard counts, so each shard
//     additionally runs an expansion statement grouped by (GroupBy..., x)
//     and the coordinator counts the union of shipped values per group.
//     The main statement carries a placeholder COUNT(*) in the slot to keep
//     slot arity aligned; the coordinator ignores it.
//   - A hidden trailing COUNT(*) is appended so every shipped group carries
//     its true source-row count — that is what initializes MIN/MAX
//     correctly, divides AVG, and keeps materialize-only zero rows inert.
//   - ORDER BY and LIMIT are stripped: a shard-local LIMIT would drop
//     groups another shard completes, so ordering and limiting happen once
//     at the coordinator.

import (
	"castle/internal/exec"
	"castle/internal/plan"
)

// Gather cost-model constants. Shuffled rows carry 4 bytes per group key
// and 8 bytes per aggregate slot plus a fixed per-shard framing overhead;
// the coordinator ingests shuffle traffic at ~1.35 GB/s against its
// 2.7 GHz clock (2 cycles per byte, a 10 GbE-class fabric) and spends a
// small scalar budget folding each partial row into the accumulator.
const (
	shardFrameBytes     = 64
	shuffleCyclesPerB   = 2
	gatherCyclesPerRow  = 16
	coordinatorClockGHz = 2.7
)

// program is the set of statements every shard executes for one query: the
// rewritten main partial plus one expansion per COUNT(DISTINCT) slot whose
// column is not already a group key.
type program struct {
	stmts []*plan.Query
	// distinctSlots[i] is the q.Aggs slot expansion statement stmts[i+1]
	// feeds.
	distinctSlots []int
	// groupedSlots maps q.Aggs slots whose distinct column is itself a
	// group key to that key's index: the distinct set per group is then the
	// group's own key value, so no expansion statement is needed.
	groupedSlots map[int]int
}

// buildProgram rewrites a bound query into its shard statements.
func buildProgram(q *plan.Query) *program {
	main := *q
	main.Aggs = make([]plan.AggExpr, 0, len(q.Aggs)+1)
	p := &program{groupedSlots: map[int]int{}}
	for i, a := range q.Aggs {
		switch a.Kind {
		case plan.AggAvg:
			main.Aggs = append(main.Aggs, plan.AggExpr{Kind: plan.AggSumCol, A: a.A})
		case plan.AggCountDistinct:
			main.Aggs = append(main.Aggs, plan.AggExpr{Kind: plan.AggCount})
			if gi := groupKeyIndex(q, q.Fact, a.A); gi >= 0 {
				p.groupedSlots[i] = gi
			} else {
				p.distinctSlots = append(p.distinctSlots, i)
			}
		default:
			main.Aggs = append(main.Aggs, a)
		}
	}
	main.Aggs = append(main.Aggs, plan.AggExpr{Kind: plan.AggCount})
	main.OrderBy, main.Limit = nil, 0

	p.stmts = []*plan.Query{&main}
	for _, slot := range p.distinctSlots {
		dq := *q
		dq.GroupBy = append(append([]plan.ColRef(nil), q.GroupBy...),
			plan.ColRef{Table: q.Fact, Column: q.Aggs[slot].A})
		dq.Aggs = []plan.AggExpr{{Kind: plan.AggCount}}
		dq.OrderBy, dq.Limit = nil, 0
		p.stmts = append(p.stmts, &dq)
	}
	return p
}

// groupKeyIndex returns the GroupBy index of table.column, or -1.
func groupKeyIndex(q *plan.Query, table, column string) int {
	for i, g := range q.GroupBy {
		if g.Table == table && g.Column == column {
			return i
		}
	}
	return -1
}

// shuffleSize prices shipping one shard's partials to the coordinator.
func (p *program) shuffleSize(q *plan.Query, results []*exec.Result) (rows, bytes int64) {
	bytes = shardFrameBytes
	keyW := int64(4 * len(q.GroupBy))
	aggW := int64(8 * (len(q.Aggs) + 1))
	bytes += int64(len(results[0].Rows)) * (keyW + aggW)
	rows += int64(len(results[0].Rows))
	for i := 1; i < len(results); i++ {
		// Expansion rows: group keys plus the distinct value, one count.
		bytes += int64(len(results[i].Rows)) * (keyW + 4 + 8)
		rows += int64(len(results[i].Rows))
	}
	return rows, bytes
}

// fold merges one shard's shipped results into the accumulator. Main rows
// replay through Add with the hidden row count; expansion rows feed the
// per-group distinct sets only (feeding them through Add too would double
// the row counts and corrupt AVG).
func (p *program) fold(q *plan.Query, acc *exec.PartialAcc, results []*exec.Result) {
	nAggs := len(q.Aggs)
	for _, row := range results[0].Rows {
		acc.Add(row.Keys, row.Aggs[:nAggs], row.Aggs[nAggs])
		for slot, gi := range p.groupedSlots {
			if row.Aggs[nAggs] > 0 {
				acc.AddDistinct(row.Keys, slot, row.Keys[gi:gi+1])
			}
		}
	}
	k := len(q.GroupBy)
	for i, slot := range p.distinctSlots {
		for _, row := range results[i+1].Rows {
			acc.AddDistinct(row.Keys[:k], slot, row.Keys[k:k+1])
		}
	}
}
