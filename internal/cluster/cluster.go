package cluster

// cluster.go is the scatter-gather coordinator: it owns the sharded layout
// (R replicas of every shard), routes each query to the least-loaded
// replica per shard, optionally prunes shards whose range-partition key
// bounds cannot match the query's partition-key predicates, fans the
// rewritten shard program out concurrently, and merges the shipped partials
// in fixed shard order so the final relation is bit-identical to a
// single-node run.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"castle/internal/exec"
	"castle/internal/plan"
	"castle/internal/storage"
	"castle/internal/telemetry"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the shard count N (>= 1).
	Nodes int
	// Replicas is the replica count R per shard (0 selects 1).
	Replicas int
	// Scheme partitions the fact table by hash (default) or range.
	Scheme Scheme
	// Fact is the partitioned relation (empty selects "lineorder").
	Fact string
	// Key is the partition-key column on Fact (empty selects
	// "lo_orderdate").
	Key string
	// Telemetry, when non-nil, receives per-node queue-depth gauges,
	// per-shard shuffle counters and scatter/gather phase histograms.
	Telemetry *telemetry.Telemetry
}

// Coordinator is the scatter-gather front of a sharded Castle deployment.
type Coordinator struct {
	cfg  Config
	part *Partitioning
	// nodes[s][r] is replica r of shard s. Replicas share the shard
	// database (it is immutable at query time) but queue independently.
	nodes [][]*Node

	tel         *telemetry.Telemetry
	scatterHist *telemetry.Histogram
	gatherHist  *telemetry.Histogram
	prunedCount *telemetry.Counter
	shuffleBy   []*telemetry.Counter
}

// New partitions db and boots N×R simulated nodes. It validates the
// topology (positive shard and replica counts, partition key present on
// the fact table) and returns descriptive errors instead of panicking deep
// in partitioning.
func New(db *storage.Database, cfg Config) (*Coordinator, error) {
	if cfg.Fact == "" {
		cfg.Fact = "lineorder"
	}
	if cfg.Key == "" {
		cfg.Key = "lo_orderdate"
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replica count %d is not positive", cfg.Replicas)
	}
	part, err := Partition(db, cfg.Fact, cfg.Key, cfg.Scheme, cfg.Nodes)
	if err != nil {
		return nil, err
	}

	c := &Coordinator{cfg: cfg, part: part, tel: cfg.Telemetry}
	var reg *telemetry.Registry
	if cfg.Telemetry != nil {
		reg = cfg.Telemetry.Metrics()
		c.scatterHist = reg.Histogram(telemetry.MetricClusterPhaseMicros,
			"Coordinator phase durations in microseconds.", telemetry.L("phase", "scatter"))
		c.gatherHist = reg.Histogram(telemetry.MetricClusterPhaseMicros,
			"Coordinator phase durations in microseconds.", telemetry.L("phase", "gather"))
		c.prunedCount = reg.Counter(telemetry.MetricClusterShardsPruned,
			"Shards skipped by range-partition min/max pruning.")
	}
	c.nodes = make([][]*Node, cfg.Nodes)
	c.shuffleBy = make([]*telemetry.Counter, cfg.Nodes)
	for s := 0; s < cfg.Nodes; s++ {
		c.nodes[s] = make([]*Node, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			c.nodes[s][r] = newNode(s, r, part.Shards[s], reg)
		}
		if reg != nil {
			c.shuffleBy[s] = reg.Counter(telemetry.MetricShuffleBytes,
				"Cross-node shuffle bytes (shard partials shipped to the coordinator).",
				telemetry.L("shard", fmt.Sprintf("%d", s)))
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.cfg.Nodes }

// Replicas returns the replica count per shard.
func (c *Coordinator) Replicas() int { return c.cfg.Replicas }

// Scheme returns the partitioning scheme.
func (c *Coordinator) Scheme() Scheme { return c.cfg.Scheme }

// Node returns replica r of shard s.
func (c *Coordinator) Node(s, r int) *Node { return c.nodes[s][r] }

// Stats is the cluster-level cost accounting of one query, the scale-out
// analogue of ParallelStats: ElapsedCycles is the critical path (slowest
// shard plus the gather), WorkCycles sums every node's work view plus the
// gather, and ShuffleBytes prices the cross-node partial-aggregate traffic
// the way BytesMoved prices DRAM.
type Stats struct {
	Shards   int
	Replicas int
	Scheme   string
	Key      string

	// ElapsedCycles = max(node cycles) + ShuffleCycles + MergeCycles.
	ElapsedCycles int64
	// WorkCycles = sum(node work cycles) + ShuffleCycles + MergeCycles.
	WorkCycles int64
	// Seconds is the simulated wall time on the critical path.
	Seconds float64
	// BytesMoved sums the nodes' DRAM traffic.
	BytesMoved int64

	// ShuffleBytes is the cross-node traffic: partial rows shipped from
	// shard executors to the coordinator, plus per-shard framing.
	ShuffleBytes int64
	// ShuffleCycles and MergeCycles are the coordinator's gather cost.
	ShuffleCycles, MergeCycles int64
	// PartialRows counts partial-aggregate rows shipped across all shards.
	PartialRows int64

	// Per-shard views, indexed by shard. Pruned shards hold zeros.
	NodeCycles       []int64
	NodeWorkCycles   []int64
	NodeShuffleBytes []int64
	NodePartialRows  []int64
	NodeNames        []string // executing replica, "" when pruned
	Pruned           []bool
	PrunedShards     int

	// ScatterEnd is the instant the last shard finished (the
	// scatter/gather wall-clock boundary for flight-record phases).
	ScatterEnd time.Time
}

// Report is the query-level telemetry of one coordinated execution.
type Report struct {
	Stats Stats
	// Breakdown carries one row per shard plus the scatter-overlap credit
	// and the gather rows; the rows partition Stats.ElapsedCycles exactly.
	Breakdown *telemetry.Breakdown
	// Plan is the rendered topology: per-shard routing, key bounds and
	// pruning decisions, then the gather step.
	Plan string
	// DeviceUsed is "CLUSTER".
	DeviceUsed string
}

// Run scatters a bound query across the shards and gathers the exact
// single-node result.
func (c *Coordinator) Run(ctx context.Context, q *plan.Query, o ExecOptions) (*exec.Result, *Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	prog := buildProgram(q)

	n := c.cfg.Nodes
	pruned := make([]bool, n)
	prunedWhy := make([]string, n)
	for s := 0; s < n; s++ {
		if why := c.pruneReason(q, s); why != "" {
			pruned[s], prunedWhy[s] = true, why
		}
	}

	// Scatter: one goroutine per surviving shard, routed to its
	// least-loaded replica.
	results := make([][]*exec.Result, n)
	costs := make([]NodeCost, n)
	names := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if pruned[s] {
			continue
		}
		node := c.pickReplica(s)
		names[s] = node.Name
		wg.Add(1)
		go func(s int, node *Node) {
			defer wg.Done()
			results[s], costs[s], errs[s] = node.execute(ctx, prog.stmts, o)
		}(s, node)
	}
	wg.Wait()
	scatterEnd := time.Now()
	for s := 0; s < n; s++ {
		if errs[s] != nil {
			return nil, nil, errs[s]
		}
	}

	// Gather: merge in fixed shard order so the accumulator's insertion
	// order — and therefore the result — is deterministic.
	st := Stats{
		Shards: n, Replicas: c.cfg.Replicas,
		Scheme: c.cfg.Scheme.String(), Key: c.cfg.Fact + "." + c.cfg.Key,
		NodeCycles: make([]int64, n), NodeWorkCycles: make([]int64, n),
		NodeShuffleBytes: make([]int64, n), NodePartialRows: make([]int64, n),
		NodeNames: names, Pruned: pruned, ScatterEnd: scatterEnd,
	}
	acc := exec.NewPartialAcc(q)
	var maxCy, sumCy int64
	var maxSec float64
	for s := 0; s < n; s++ {
		if pruned[s] {
			st.PrunedShards++
			continue
		}
		rows, bytes := prog.shuffleSize(q, results[s])
		prog.fold(q, acc, results[s])
		st.NodeCycles[s] = costs[s].Cycles
		st.NodeWorkCycles[s] = costs[s].WorkCycles
		st.NodeShuffleBytes[s] = bytes
		st.NodePartialRows[s] = rows
		st.PartialRows += rows
		st.ShuffleBytes += bytes
		st.BytesMoved += costs[s].BytesMoved
		sumCy += costs[s].Cycles
		st.WorkCycles += costs[s].WorkCycles
		if costs[s].Cycles > maxCy {
			maxCy = costs[s].Cycles
		}
		if costs[s].Seconds > maxSec {
			maxSec = costs[s].Seconds
		}
		if c.shuffleBy[s] != nil {
			c.shuffleBy[s].Add(bytes)
		}
	}
	res := acc.Result()

	st.ShuffleCycles = st.ShuffleBytes * shuffleCyclesPerB
	st.MergeCycles = st.PartialRows * gatherCyclesPerRow
	gatherCy := st.ShuffleCycles + st.MergeCycles
	st.ElapsedCycles = maxCy + gatherCy
	st.WorkCycles += gatherCy
	st.Seconds = maxSec + float64(gatherCy)/(coordinatorClockGHz*1e9)

	if c.prunedCount != nil && st.PrunedShards > 0 {
		c.prunedCount.Add(int64(st.PrunedShards))
	}
	if c.scatterHist != nil {
		c.scatterHist.Observe(float64(scatterEnd.Sub(start).Microseconds()))
		c.gatherHist.Observe(float64(time.Since(scatterEnd).Microseconds()))
	}

	rep := &Report{
		Stats:      st,
		Breakdown:  c.breakdown(&st, costs, int64(len(res.Rows)), maxCy, sumCy),
		Plan:       c.planString(&st, prunedWhy),
		DeviceUsed: "CLUSTER",
	}
	return res, rep, nil
}

// pruneReason decides whether shard s can be skipped for q, returning a
// human-readable reason ("" executes). Queries over a non-partitioned fact
// relation run on shard 0 alone — every node replicates those tables, so
// fanning out would multiply-count. Range shards are additionally pruned
// when empty or when a partition-key predicate cannot match their bounds.
func (c *Coordinator) pruneReason(q *plan.Query, s int) string {
	if q.Fact != c.part.Fact {
		if s == 0 {
			return ""
		}
		return "replicated relation"
	}
	if c.cfg.Scheme != SchemeRange {
		return ""
	}
	if c.part.Empty[s] {
		return "empty"
	}
	lo, hi := c.part.KeyMin[s], c.part.KeyMax[s]
	for _, p := range q.FactPreds {
		if p.Column != c.part.Key || p.Table != c.part.Fact {
			continue
		}
		if !maybeInRange(p, lo, hi) {
			return "key range"
		}
	}
	return ""
}

// maybeInRange reports whether any value in [lo, hi] can satisfy p.
func maybeInRange(p plan.Predicate, lo, hi uint32) bool {
	if p.Never {
		return false
	}
	switch p.Op {
	case plan.PredEQ:
		return p.Value >= lo && p.Value <= hi
	case plan.PredNE:
		return !(lo == hi && lo == p.Value)
	case plan.PredLT:
		return lo < p.Value
	case plan.PredLE:
		return lo <= p.Value
	case plan.PredGT:
		return hi > p.Value
	case plan.PredGE:
		return hi >= p.Value
	case plan.PredBetween:
		return p.Lo <= hi && p.Hi >= lo
	case plan.PredIn:
		for _, v := range p.Values {
			if v >= lo && v <= hi {
				return true
			}
		}
		return false
	}
	return true
}

// pickReplica routes shard s to its least-loaded replica (ties to the
// lowest index, so an idle cluster is deterministic).
func (c *Coordinator) pickReplica(s int) *Node {
	best := c.nodes[s][0]
	bestDepth := best.QueueDepth()
	for _, cand := range c.nodes[s][1:] {
		if d := cand.QueueDepth(); d < bestDepth {
			best, bestDepth = cand, d
		}
	}
	return best
}

// breakdown builds the EXPLAIN ANALYZE rows: one row per shard (its
// elapsed cycles and shipped partial rows), a negative scatter-overlap
// credit that folds concurrent shard time back to the critical path, and
// the gather's shuffle and merge rows. The rows partition ElapsedCycles
// exactly, the same contract every single-node breakdown keeps.
func (c *Coordinator) breakdown(st *Stats, costs []NodeCost, groups, maxCy, sumCy int64) *telemetry.Breakdown {
	b := &telemetry.Breakdown{Device: "CLUSTER", TotalCycles: st.ElapsedCycles}
	executed := 0
	for s := 0; s < st.Shards; s++ {
		if st.Pruned[s] {
			b.Operators = append(b.Operators, telemetry.OperatorStats{
				Operator: fmt.Sprintf("shard[%d]: pruned", s), Rows: 0,
			})
			continue
		}
		executed++
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: fmt.Sprintf("shard[%d]", s),
			Device:   costs[s].Device,
			Cycles:   costs[s].Cycles,
			Rows:     st.NodePartialRows[s],
		})
	}
	if executed > 1 {
		b.Operators = append(b.Operators, telemetry.OperatorStats{
			Operator: "scatter-overlap", Cycles: maxCy - sumCy, Rows: -1,
		})
	}
	b.Operators = append(b.Operators,
		telemetry.OperatorStats{Operator: "gather:shuffle", Cycles: st.ShuffleCycles, Rows: st.PartialRows},
		telemetry.OperatorStats{Operator: "gather:merge", Cycles: st.MergeCycles, Rows: groups},
	)
	return b
}

// planString renders the topology the way optree renders operator trees:
// one header line, one line per shard with its routing decision, one
// gather line.
func (c *Coordinator) planString(st *Stats, prunedWhy []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d-shard %s on %s, %d replica(s)\n",
		st.Shards, st.Scheme, st.Key, st.Replicas)
	for s := 0; s < st.Shards; s++ {
		rows := c.part.Shards[s].MustTable(c.part.Fact).Rows()
		fmt.Fprintf(&b, "  shard[%d] rows=%d", s, rows)
		if c.cfg.Scheme == SchemeRange && !c.part.Empty[s] {
			fmt.Fprintf(&b, " keys=[%d,%d]", c.part.KeyMin[s], c.part.KeyMax[s])
		}
		if st.Pruned[s] {
			fmt.Fprintf(&b, " -> pruned (%s)", prunedWhy[s])
		} else {
			fmt.Fprintf(&b, " -> %s", st.NodeNames[s])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  gather: fixed-order merge, %d partial rows, %d shuffle bytes",
		st.PartialRows, st.ShuffleBytes)
	return b.String()
}
