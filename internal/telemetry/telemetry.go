// Package telemetry is Castle's observability subsystem: hierarchical
// query-lifecycle spans (query -> phase -> operator) carrying wall-clock
// time and simulated cycle/traffic attributes, a metrics registry
// (counters, gauges, log-bucket histograms) with Prometheus text
// exposition, and the per-operator EXPLAIN ANALYZE breakdown.
//
// The package depends only on the standard library and knows nothing about
// the simulator: producers attach cycle counts and class names as plain
// attributes, so the trace and metrics formats stay stable as the engine
// evolves. Everything is safe for concurrent use, and every entry point is
// nil-receiver safe — a disabled pipeline passes *Telemetry(nil) around and
// pays only a nil check per call site.
package telemetry

import "io"

// Telemetry couples a span recorder, a metrics registry and a query flight
// recorder for one observation scope (typically one process; tests use one
// per query).
type Telemetry struct {
	trace   *TraceRecorder
	metrics *Registry
	flight  *FlightRecorder
}

// New returns a Telemetry with a default-capacity span recorder, an empty
// metrics registry and a default-capacity flight recorder.
func New() *Telemetry {
	return &Telemetry{trace: NewTraceRecorder(0), metrics: NewRegistry(), flight: NewFlightRecorder(0)}
}

// Trace returns the span recorder (nil for a nil Telemetry).
func (t *Telemetry) Trace() *TraceRecorder {
	if t == nil {
		return nil
	}
	return t.trace
}

// Metrics returns the metrics registry (nil for a nil Telemetry).
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Flight returns the query flight recorder (nil for a nil Telemetry).
func (t *Telemetry) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// StartSpan opens a root span. Returns nil (a no-op span) when t is nil.
func (t *Telemetry) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.trace.start(name, nil)
}

// WriteChromeTrace exports recorded spans as Chrome trace-event JSON
// (viewable in Perfetto / chrome://tracing). A nil Telemetry writes an
// empty-but-valid trace.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return NewTraceRecorder(1).WriteChromeTrace(w)
	}
	return t.trace.WriteChromeTrace(w)
}

// WritePrometheus exports the registry in Prometheus text exposition
// format. A nil Telemetry writes nothing.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.metrics.WritePrometheus(w)
}

// Standard metric names recorded by the Castle stack. Keeping them in one
// place makes dashboards and tests resilient to call-site refactors.
const (
	// MetricQueries counts queries run, labelled by device.
	MetricQueries = "castle_queries_total"
	// MetricCSBCycles counts simulated CSB cycles, labelled by Figure 7
	// instruction class. Matches cape.Stats.CSBCyclesByClass exactly.
	MetricCSBCycles = "castle_csb_cycles_total"
	// MetricCPCycles counts simulated control-processor cycles.
	MetricCPCycles = "castle_cp_cycles_total"
	// MetricMemCycles counts simulated VMU/memory transfer cycles.
	MetricMemCycles = "castle_mem_cycles_total"
	// MetricCPUCycles counts simulated baseline-CPU cycles.
	MetricCPUCycles = "castle_cpu_cycles_total"
	// MetricRowsScanned counts table rows scanned (fact and dimension).
	MetricRowsScanned = "castle_rows_scanned_total"
	// MetricBytesMoved counts simulated DRAM traffic, labelled by device.
	MetricBytesMoved = "castle_bytes_moved_total"
	// MetricPlanShapes counts optimizer plan-shape choices.
	MetricPlanShapes = "castle_plan_shape_total"
	// MetricQueryCycles is a histogram of end-to-end query cycles.
	MetricQueryCycles = "castle_query_cycles"
	// MetricQuerySeconds is a histogram of simulated query wall time.
	MetricQuerySeconds = "castle_query_seconds"
	// MetricPlanCacheHits counts prepared-plan cache hits.
	MetricPlanCacheHits = "castle_plan_cache_hits_total"
	// MetricPlanCacheMisses counts prepared-plan cache misses.
	MetricPlanCacheMisses = "castle_plan_cache_misses_total"
	// MetricEstimateDivergence is a histogram of how far the placement cost
	// model's per-operator cycle predictions land from the measured actuals,
	// labelled by operator kind and device. Observations are the larger of
	// est/actual and actual/est as a percentage, so 100 means a perfect
	// prediction and 200 means off by 2x in either direction.
	MetricEstimateDivergence = "castle_estimate_divergence_pct"
	// MetricPlacementWouldFlip counts queries whose measured cycle total
	// exceeded the predicted cost of the best alternative placement — the
	// executions where perfect information would have flipped the
	// placement decision. Plans with no feasible alternative (a grouped
	// SUM(a*b) tail can only run on the CPU) are never counted.
	MetricPlacementWouldFlip = "castle_placement_would_flip_total"
	// MetricReplacements counts queries whose aggregation tail was re-placed
	// mid-query by the adaptive checkpoint, labelled by the direction the
	// tail moved (e.g. "CAPE->CPU").
	MetricReplacements = "castle_replacements_total"
	// MetricPeakBatchBytes gauges the peak bytes resident in streaming
	// batches during the most recent streamed query (O(K·MAXVL) by design).
	MetricPeakBatchBytes = "castle_peak_batch_bytes"
	// MetricXferOverlapCycles counts transfer cycles hidden under compute
	// by the double-buffered streaming pipeline (the xfer-overlap credit).
	MetricXferOverlapCycles = "castle_xfer_overlap_cycles_total"
)

// Metric names recorded by the query service (internal/server). Histograms
// observe microseconds: the shared power-of-two bucket ladder starts at 1,
// so sub-second latencies need a sub-second unit to resolve.
const (
	// MetricServerQueueDepth gauges requests sitting in the admission queue.
	MetricServerQueueDepth = "castle_server_queue_depth"
	// MetricServerShed counts requests rejected because the queue was full.
	MetricServerShed = "castle_server_shed_total"
	// MetricServerRequests counts completed requests, labelled by status
	// (ok, error, deadline, canceled, shed, closed).
	MetricServerRequests = "castle_server_requests_total"
	// MetricServerLatency is a histogram of end-to-end request wall time in
	// microseconds (admission to response).
	MetricServerLatency = "castle_server_request_micros"
	// MetricServerQueueWait is a histogram of time spent queued before a
	// worker picked the request up, in microseconds.
	MetricServerQueueWait = "castle_server_queue_wait_micros"
	// MetricServerTilesBusy gauges execution resources in use, labelled by
	// device (cape tiles, cpu slots).
	MetricServerTilesBusy = "castle_server_tiles_busy"
	// MetricServerTilesLeased gauges resources currently leased to
	// in-flight queries, labelled by device. Unlike the busy gauge it
	// counts elastic leases: a query fanning its fact sweep across K tiles
	// holds K here.
	MetricServerTilesLeased = "castle_server_tiles_leased"
	// MetricServerLeaseSize is a histogram of tiles leased per query (the
	// elastic-lease fan-out the scheduler actually granted).
	MetricServerLeaseSize = "castle_server_lease_size"
	// MetricServerInFlight gauges requests admitted but not yet completed
	// (queued or executing).
	MetricServerInFlight = "castle_server_in_flight_requests"
	// MetricServerPhaseMicros is a histogram of per-request lifecycle phase
	// durations in microseconds, labelled by phase (queue, lease, exec,
	// serialize). The four phases partition the end-to-end latency.
	MetricServerPhaseMicros = "castle_server_phase_micros"
	// MetricServerSlowQueries counts requests whose end-to-end latency
	// crossed the configured slow-query threshold.
	MetricServerSlowQueries = "castle_server_slow_queries_total"
	// MetricSharedSweeps counts fused shared-scan executions (one per
	// coalesced group that ran a fused fact sweep), labelled by device.
	MetricSharedSweeps = "castle_shared_sweeps_total"
	// MetricCoalescedQueries counts member queries served by a fused
	// shared-scan execution (a group of N adds N; identical-fingerprint
	// members that shared one result still count individually), labelled by
	// kind (fused, deduped).
	MetricCoalescedQueries = "castle_coalesced_queries_total"
	// MetricCoalesceWait is a histogram of how long queries waited in the
	// coalescing window before their group flushed, in microseconds.
	MetricCoalesceWait = "castle_coalesce_wait_micros"
)

// Metric names recorded by the scatter-gather cluster tier
// (internal/cluster).
const (
	// MetricNodeQueueDepth gauges queries queued or executing on one
	// simulated node, labelled by node ("shard<i>/r<j>"). The coordinator's
	// replica load balancer picks the replica with the smallest value.
	MetricNodeQueueDepth = "castle_node_queue_depth"
	// MetricShuffleBytes counts cross-node shuffle traffic (partial
	// aggregate rows shipped from shard executors to the coordinator),
	// labelled by shard index.
	MetricShuffleBytes = "castle_shuffle_bytes_total"
	// MetricClusterPhaseMicros is a histogram of coordinator phase
	// durations in microseconds, labelled by phase (scatter, gather).
	MetricClusterPhaseMicros = "castle_cluster_phase_micros"
	// MetricClusterShardsPruned counts shards skipped by range-partition
	// min/max pruning.
	MetricClusterShardsPruned = "castle_cluster_shards_pruned_total"
)
