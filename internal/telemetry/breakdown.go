package telemetry

import (
	"fmt"
	"strings"
)

// OperatorStats is one row of an EXPLAIN ANALYZE breakdown: the simulated
// cycles (and, where meaningful, rows handled) attributed to one physical
// operator of the executed plan.
type OperatorStats struct {
	// Operator names the plan node, e.g. "prep:date", "join:part",
	// "filter", "aggregate", "overhead".
	Operator string
	// Device names the engine the operator ran on ("CAPE" or "CPU"); empty
	// on breakdowns recorded before per-operator placement existed.
	Device string
	// Cycles is the simulated cycle count attributed to the operator.
	Cycles int64
	// Rows is the operator's row cardinality (filtered dimension rows for
	// prep/join nodes, scanned fact rows for filter, groups for aggregate;
	// -1 when not meaningful).
	Rows int64
	// EstCycles is the placement cost model's predicted cycle count for the
	// operator, attached after execution via ApplyEstimates; 0 for rows the
	// model does not price ("overhead", per-tile sweep rows).
	EstCycles int64
	// EstSource is the provenance of the attached estimate ("assumed",
	// "histogram", or "observed"); empty for rows the model does not price.
	// A non-empty EstSource with EstCycles == 0 is a true zero estimate,
	// not an unpriced row.
	EstSource string
}

// Estimated reports whether the row carries an estimate at all. EstCycles
// alone cannot answer this: a zero-cardinality operator is legitimately
// estimated at zero cycles.
func (o OperatorStats) Estimated() bool {
	return o.EstSource != "" || o.EstCycles > 0
}

// Breakdown is the per-operator accounting of one executed query — the
// EXPLAIN ANALYZE surface. The operator cycle counts partition the total:
// sum(Operators[i].Cycles) == TotalCycles exactly (the executor closes the
// books with an explicit "overhead" row).
type Breakdown struct {
	// Device names the engine that ran ("CAPE", "CPU", or "CAPE+CPU" for
	// mixed per-operator placements).
	Device string
	// Operators lists plan nodes in execution order.
	Operators []OperatorStats
	// TotalCycles is the engine's end-to-end cycle count for the query.
	TotalCycles int64
}

// Clone returns a deep copy (executors hand these out across runs).
func (b *Breakdown) Clone() *Breakdown {
	if b == nil {
		return nil
	}
	out := &Breakdown{Device: b.Device, TotalCycles: b.TotalCycles}
	out.Operators = append([]OperatorStats(nil), b.Operators...)
	return out
}

// SumCycles returns the sum of the operator rows (== TotalCycles for a
// well-formed breakdown; tests assert the reconciliation).
func (b *Breakdown) SumCycles() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for _, o := range b.Operators {
		n += o.Cycles
	}
	return n
}

// ApplyEstimates attaches per-operator predicted cycles (keyed by breakdown
// row name) to matching operator rows, and returns how many rows matched.
// Estimates without a matching row (e.g. a per-operator prediction against
// a parallel sweep's per-tile rows) are dropped; rows without an estimate
// keep EstCycles == 0 and render "-" in the est columns.
func (b *Breakdown) ApplyEstimates(est map[string]int64) int {
	if b == nil || len(est) == 0 {
		return 0
	}
	matched := 0
	for i := range b.Operators {
		if v, ok := est[b.Operators[i].Operator]; ok && v > 0 {
			b.Operators[i].EstCycles = v
			matched++
		}
	}
	return matched
}

// DivergencePct computes the symmetric-ratio divergence between a
// predicted and a measured count: max(est/act, act/est) as a percentage,
// so 100 means exact and 200 means off by 2x in either direction. The
// zero cases are guarded explicitly rather than floored away: both zero is
// an exact prediction (100, defined); exactly one zero has no finite ratio
// (0, undefined) — callers must branch on ok instead of recording a
// meaningless number.
func DivergencePct(est, act int64) (pct float64, ok bool) {
	if est <= 0 && act <= 0 {
		return 100, true
	}
	if est <= 0 || act <= 0 {
		return 0, false
	}
	r := float64(est) / float64(act)
	if r < 1 {
		r = 1 / r
	}
	return 100 * r, true
}

// EstimateCell is one row's estimate with provenance, the source-aware
// form of an ApplyEstimates value (mirrors plan.EstCell without importing
// the plan package).
type EstimateCell struct {
	Cycles int64
	Source string
}

// ApplyEstimateCells attaches source-tagged per-operator predictions,
// keyed by breakdown row name, and returns how many rows matched. Unlike
// ApplyEstimates, a zero-cycle cell still attaches — its non-empty Source
// marks the row as estimated, so divergence telemetry can distinguish
// "predicted zero" from "never priced".
func (b *Breakdown) ApplyEstimateCells(est map[string]EstimateCell) int {
	if b == nil || len(est) == 0 {
		return 0
	}
	matched := 0
	for i := range b.Operators {
		if c, ok := est[b.Operators[i].Operator]; ok {
			b.Operators[i].EstCycles = c.Cycles
			b.Operators[i].EstSource = c.Source
			matched++
		}
	}
	return matched
}

// SumEstCycles sums the attached per-operator predictions.
func (b *Breakdown) SumEstCycles() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for _, o := range b.Operators {
		n += o.EstCycles
	}
	return n
}

// Format renders the aligned EXPLAIN ANALYZE table:
//
//	operator           cycles      share    rows
//	prep:date          1234        0.1%     2556
//	join:date          456789     42.3%     2556
//	...
//	total              1080000    100.0%
//
// A device column renders when any operator carries one (placed plans), and
// est / est/act columns render when any operator carries a prediction.
func (b *Breakdown) Format() string {
	if b == nil {
		return ""
	}
	// Optional columns render only when any operator populates them; older
	// breakdowns without devices or estimates keep the narrow table.
	withDevice, withEst, withSrc := false, false, false
	for _, o := range b.Operators {
		if o.Device != "" {
			withDevice = true
		}
		if o.Estimated() {
			withEst = true
		}
		if o.EstSource != "" {
			withSrc = true
		}
	}
	var sb strings.Builder
	if withDevice {
		fmt.Fprintf(&sb, "%-20s %-8s %14s %8s %12s", "operator", "device", "cycles", "share", "rows")
	} else {
		fmt.Fprintf(&sb, "%-20s %14s %8s %12s", "operator", "cycles", "share", "rows")
	}
	if withEst {
		fmt.Fprintf(&sb, " %14s %8s", "est", "est/act")
	}
	if withSrc {
		fmt.Fprintf(&sb, " %-10s", "est-src")
	}
	sb.WriteByte('\n')
	for _, o := range b.Operators {
		share := 0.0
		if b.TotalCycles > 0 {
			share = 100 * float64(o.Cycles) / float64(b.TotalCycles)
		}
		rows := ""
		if o.Rows >= 0 {
			rows = fmt.Sprintf("%d", o.Rows)
		}
		if withDevice {
			fmt.Fprintf(&sb, "%-20s %-8s %14d %7.1f%% %12s", o.Operator, o.Device, o.Cycles, share, rows)
		} else {
			fmt.Fprintf(&sb, "%-20s %14d %7.1f%% %12s", o.Operator, o.Cycles, share, rows)
		}
		if withEst {
			est, ratio := "-", "-"
			if o.Estimated() {
				est = fmt.Sprintf("%d", o.EstCycles)
				if o.Cycles > 0 {
					ratio = fmt.Sprintf("%.2f", float64(o.EstCycles)/float64(o.Cycles))
				} else if o.EstCycles == 0 {
					// Both sides zero: the prediction was exact.
					ratio = "1.00"
				}
			}
			fmt.Fprintf(&sb, " %14s %8s", est, ratio)
		}
		if withSrc {
			src := "-"
			if o.EstSource != "" {
				src = o.EstSource
			}
			fmt.Fprintf(&sb, " %-10s", src)
		}
		sb.WriteByte('\n')
	}
	if withDevice {
		fmt.Fprintf(&sb, "%-20s %-8s %14d %7.1f%%\n", "total ("+b.Device+")", "", b.TotalCycles, 100.0)
	} else {
		fmt.Fprintf(&sb, "%-20s %14d %7.1f%%\n", "total ("+b.Device+")", b.TotalCycles, 100.0)
	}
	return sb.String()
}
