package telemetry

import (
	"fmt"
	"strings"
)

// OperatorStats is one row of an EXPLAIN ANALYZE breakdown: the simulated
// cycles (and, where meaningful, rows handled) attributed to one physical
// operator of the executed plan.
type OperatorStats struct {
	// Operator names the plan node, e.g. "prep:date", "join:part",
	// "filter", "aggregate", "overhead".
	Operator string
	// Device names the engine the operator ran on ("CAPE" or "CPU"); empty
	// on breakdowns recorded before per-operator placement existed.
	Device string
	// Cycles is the simulated cycle count attributed to the operator.
	Cycles int64
	// Rows is the operator's row cardinality (filtered dimension rows for
	// prep/join nodes, scanned fact rows for filter, groups for aggregate;
	// -1 when not meaningful).
	Rows int64
}

// Breakdown is the per-operator accounting of one executed query — the
// EXPLAIN ANALYZE surface. The operator cycle counts partition the total:
// sum(Operators[i].Cycles) == TotalCycles exactly (the executor closes the
// books with an explicit "overhead" row).
type Breakdown struct {
	// Device names the engine that ran ("CAPE", "CPU", or "CAPE+CPU" for
	// mixed per-operator placements).
	Device string
	// Operators lists plan nodes in execution order.
	Operators []OperatorStats
	// TotalCycles is the engine's end-to-end cycle count for the query.
	TotalCycles int64
}

// Clone returns a deep copy (executors hand these out across runs).
func (b *Breakdown) Clone() *Breakdown {
	if b == nil {
		return nil
	}
	out := &Breakdown{Device: b.Device, TotalCycles: b.TotalCycles}
	out.Operators = append([]OperatorStats(nil), b.Operators...)
	return out
}

// SumCycles returns the sum of the operator rows (== TotalCycles for a
// well-formed breakdown; tests assert the reconciliation).
func (b *Breakdown) SumCycles() int64 {
	if b == nil {
		return 0
	}
	var n int64
	for _, o := range b.Operators {
		n += o.Cycles
	}
	return n
}

// Format renders the aligned EXPLAIN ANALYZE table:
//
//	operator           cycles      share    rows
//	prep:date          1234        0.1%     2556
//	join:date          456789     42.3%     2556
//	...
//	total              1080000    100.0%
func (b *Breakdown) Format() string {
	if b == nil {
		return ""
	}
	// A device column renders when any operator carries one (placed plans);
	// older breakdowns without per-operator devices keep the narrow table.
	withDevice := false
	for _, o := range b.Operators {
		if o.Device != "" {
			withDevice = true
			break
		}
	}
	var sb strings.Builder
	if withDevice {
		fmt.Fprintf(&sb, "%-20s %-8s %14s %8s %12s\n", "operator", "device", "cycles", "share", "rows")
	} else {
		fmt.Fprintf(&sb, "%-20s %14s %8s %12s\n", "operator", "cycles", "share", "rows")
	}
	for _, o := range b.Operators {
		share := 0.0
		if b.TotalCycles > 0 {
			share = 100 * float64(o.Cycles) / float64(b.TotalCycles)
		}
		rows := ""
		if o.Rows >= 0 {
			rows = fmt.Sprintf("%d", o.Rows)
		}
		if withDevice {
			fmt.Fprintf(&sb, "%-20s %-8s %14d %7.1f%% %12s\n", o.Operator, o.Device, o.Cycles, share, rows)
		} else {
			fmt.Fprintf(&sb, "%-20s %14d %7.1f%% %12s\n", o.Operator, o.Cycles, share, rows)
		}
	}
	if withDevice {
		fmt.Fprintf(&sb, "%-20s %-8s %14d %7.1f%%\n", "total ("+b.Device+")", "", b.TotalCycles, 100.0)
	} else {
		fmt.Fprintf(&sb, "%-20s %14d %7.1f%%\n", "total ("+b.Device+")", b.TotalCycles, 100.0)
	}
	return sb.String()
}
