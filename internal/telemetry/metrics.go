package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {class, search}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (negative deltas are ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed log-scale bucket ladder shared by every
// histogram: powers of two from 1 to 2^48. Query cycle counts span six
// orders of magnitude between micro-queries and SF-1 scans, so a
// fixed-ratio (2x) ladder gives useful resolution everywhere without
// per-metric configuration.
var histBuckets = func() []float64 {
	out := make([]float64, 49)
	v := 1.0
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}()

// Histogram accumulates observations into the fixed log-scale buckets.
type Histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket boundary, plus the +Inf overflow slot
	sum    float64
	total  int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(histBuckets)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(histBuckets, v) // first bucket with le >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metric kinds, matching Prometheus TYPE values.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one (metric, label set) time series.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Safe for concurrent use; handle lookups take a lock,
// updates on the returned handles are lock-free (atomics) so hot paths
// should cache handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// lookup finds or creates the series for (name, labels), checking that the
// metric kind is consistent across call sites.
func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and re-used as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		ls := make([]Label, len(labels))
		copy(ls, labels)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels).gauge
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. All histograms share the fixed power-of-two bucket ladder.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels).hist
}

// CounterValue reads a counter without creating it (0 when absent) — a
// test and reconciliation helper.
func (r *Registry) CounterValue(name string, labels ...Label) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	var s *series
	if ok {
		s = f.series[labelKey(labels)]
	}
	r.mu.Unlock()
	if s == nil || s.counter == nil {
		return 0
	}
	return s.counter.Value()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a sample value without exponent noise for integral
// values (Prometheus accepts both; integers diff cleanly in tests).
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in text exposition format, sorted
// by metric name then label set for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot series lists under the lock; values are read via atomics /
	// the histogram's own lock afterwards.
	type famSnap struct {
		f    *family
		keys []string
	}
	snaps := make([]famSnap, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, famSnap{f: f, keys: keys})
	}
	r.mu.Unlock()

	for _, fs := range snaps {
		f := fs.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, k := range fs.keys {
			s := f.series[k]
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.gauge.Value())
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	var cum int64
	for i, b := range histBuckets {
		cum += counts[i]
		// Skip leading all-zero buckets to keep the exposition small; the
		// first non-empty bucket onward renders the full cumulative ladder.
		if cum == 0 && i < len(histBuckets)-1 && counts[i+1] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, formatLabels(s.labels, L("le", formatFloat(b))), cum); err != nil {
			return err
		}
		if cum == total {
			break
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, formatLabels(s.labels, L("le", "+Inf")), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.labels), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels), total)
	return err
}
