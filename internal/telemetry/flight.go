package telemetry

// flight.go is the query flight recorder: a fixed-capacity ring of complete
// per-query records — SQL, fingerprint, placement, per-operator predicted
// and actual cycles, and wall-clock lifecycle phases — kept for the last N
// queries. The recorder is the post-mortem complement to the span ring:
// spans answer "what does a query lifecycle look like in general", the
// flight recorder answers "where did THIS query's time go and was the cost
// model right about it". It backs /debug/queries, the slow-query log, and
// the REPL's \flight command.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"time"
)

// FlightPhase is one wall-clock lifecycle interval of a query. The phases
// of a record partition its WallMicros: they sum (within microsecond
// rounding) to the end-to-end latency the client observed.
type FlightPhase struct {
	// Name identifies the interval ("queue", "lease", "exec", "serialize"
	// through the server; "prepare"/"execute" for direct facade callers).
	Name string `json:"name"`
	// Micros is the interval's wall-clock duration in microseconds.
	Micros int64 `json:"micros"`
}

// FlightOp is one operator of a query's EXPLAIN ANALYZE breakdown with the
// optimizer's prediction alongside the measured actuals — the
// predicted-vs-actual contract adaptive placement feeds on.
type FlightOp struct {
	// Operator is the breakdown row name ("prep:date", "filter", ...).
	Operator string `json:"operator"`
	// Device names the engine the operator ran on (empty when unplaced).
	Device string `json:"device,omitempty"`
	// EstCycles is the cost model's predicted cycle count (0 for rows the
	// model does not price, e.g. "overhead").
	EstCycles int64 `json:"est_cycles,omitempty"`
	// Cycles is the measured simulated cycle count.
	Cycles int64 `json:"cycles"`
	// Rows is the operator's measured row cardinality (-1 when not
	// meaningful).
	Rows int64 `json:"rows"`
	// EstSource is the provenance of the estimate: "assumed" (fixed
	// constants), "histogram" (collected statistics), "observed" (measured
	// mid-query by the adaptive checkpoint). Empty for unpriced rows.
	EstSource string `json:"est_source,omitempty"`
}

// FlightRecord is the complete post-mortem of one query.
type FlightRecord struct {
	// Seq is the recorder-assigned sequence number (1-based, monotone).
	Seq uint64 `json:"seq"`
	// SQL is the statement text.
	SQL string `json:"sql"`
	// Fingerprint groups executions of the same statement (FNV-1a of the
	// trimmed SQL).
	Fingerprint string `json:"fingerprint"`
	// Start is when the query entered the system.
	Start time.Time `json:"start"`
	// WallMicros is end-to-end wall time; the Phases partition it.
	WallMicros int64 `json:"wall_micros"`
	// Status is the outcome ("ok", "error", "deadline", "canceled").
	Status string `json:"status"`
	// Error carries the failure message for non-ok statuses.
	Error string `json:"error,omitempty"`
	// Device names the engine(s) that executed ("CAPE", "CPU", "CAPE+CPU").
	Device string `json:"device,omitempty"`
	// Placement is the hybrid granularity ("whole-query", "per-operator");
	// empty when the device was forced.
	Placement string `json:"placement,omitempty"`
	// Plan is the rendered physical or placed plan.
	Plan string `json:"plan,omitempty"`
	// RowCount is the result cardinality.
	RowCount int `json:"row_count"`
	// Cycles is the measured end-to-end simulated cycle count.
	Cycles int64 `json:"cycles"`
	// EstCycles is the cost model's predicted total for the placement that
	// ran (0 when no prediction applies).
	EstCycles int64 `json:"est_cycles,omitempty"`
	// AltEstCycles is the predicted total of the best alternative placement
	// (the runner-up the optimizer rejected). When Cycles exceeds it the
	// placement would have flipped under perfect information.
	AltEstCycles int64 `json:"alt_est_cycles,omitempty"`
	// Replaced marks a run whose aggregation tail was re-placed mid-query
	// by the adaptive checkpoint (the observed survivor count diverged far
	// enough from the estimate to flip the placement model).
	Replaced bool `json:"replaced,omitempty"`
	// GroupID identifies the fused shared-scan group this query executed in
	// (0 when it ran solo). All members of a coalesced group share one ID.
	GroupID uint64 `json:"group_id,omitempty"`
	// GroupSize is how many member queries the fused group executed
	// together (0 when solo).
	GroupSize int `json:"group_size,omitempty"`
	// Phases are the wall-clock lifecycle intervals, in order.
	Phases []FlightPhase `json:"phases"`
	// Ops is the per-operator predicted-vs-actual table.
	Ops []FlightOp `json:"ops,omitempty"`
	// Batches counts the MAXVL-sized batches the streaming pipeline pulled
	// (0 for materializing runs).
	Batches int64 `json:"batches,omitempty"`
	// PeakBatchBytes is the high-water mark of bytes resident in streaming
	// batches across the run (0 for materializing runs).
	PeakBatchBytes int64 `json:"peak_batch_bytes,omitempty"`
}

// PhaseMicros returns the duration of a named phase (0 when absent).
func (r *FlightRecord) PhaseMicros(name string) int64 {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Micros
		}
	}
	return 0
}

// SumPhaseMicros sums the lifecycle phases (== WallMicros within rounding
// for a complete record).
func (r *FlightRecord) SumPhaseMicros() int64 {
	var n int64
	for _, p := range r.Phases {
		n += p.Micros
	}
	return n
}

// clone deep-copies the record so ring amendments never alias snapshots.
func (r FlightRecord) clone() FlightRecord {
	r.Phases = append([]FlightPhase(nil), r.Phases...)
	r.Ops = append([]FlightOp(nil), r.Ops...)
	return r
}

// Format renders the record as an aligned text block (the \flight detail
// view and slow-query-log companion).
func (r *FlightRecord) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query #%d [%s] %s\n", r.Seq, r.Status, r.SQL)
	fmt.Fprintf(&b, "  fingerprint=%s device=%s", r.Fingerprint, r.Device)
	if r.Placement != "" {
		fmt.Fprintf(&b, " placement=%s", r.Placement)
	}
	fmt.Fprintf(&b, " rows=%d wall=%.3fms\n", r.RowCount, float64(r.WallMicros)/1e3)
	fmt.Fprintf(&b, "  cycles=%d est=%d", r.Cycles, r.EstCycles)
	if r.AltEstCycles > 0 {
		fmt.Fprintf(&b, " alt_est=%d", r.AltEstCycles)
	}
	if r.Replaced {
		b.WriteString(" replaced")
	}
	if r.Batches > 0 {
		fmt.Fprintf(&b, " batches=%d peak_batch_bytes=%d", r.Batches, r.PeakBatchBytes)
	}
	if r.GroupSize > 0 {
		fmt.Fprintf(&b, " group=%d/%d", r.GroupID, r.GroupSize)
	}
	if r.Error != "" {
		fmt.Fprintf(&b, " error=%q", r.Error)
	}
	b.WriteByte('\n')
	if len(r.Phases) > 0 {
		b.WriteString("  phases:")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, " %s=%.3fms", p.Name, float64(p.Micros)/1e3)
		}
		b.WriteByte('\n')
	}
	if len(r.Ops) > 0 {
		withSrc := false
		for _, op := range r.Ops {
			if op.EstSource != "" {
				withSrc = true
			}
		}
		fmt.Fprintf(&b, "  %-20s %-8s %14s %14s %9s %12s",
			"operator", "device", "est", "cycles", "est/act", "rows")
		if withSrc {
			fmt.Fprintf(&b, " %-10s", "est-src")
		}
		b.WriteByte('\n')
		for _, op := range r.Ops {
			ratio := "-"
			if op.EstCycles > 0 && op.Cycles > 0 {
				ratio = fmt.Sprintf("%.2f", float64(op.EstCycles)/float64(op.Cycles))
			}
			rows := ""
			if op.Rows >= 0 {
				rows = fmt.Sprintf("%d", op.Rows)
			}
			est := ""
			if op.EstCycles > 0 || op.EstSource != "" {
				est = fmt.Sprintf("%d", op.EstCycles)
			}
			fmt.Fprintf(&b, "  %-20s %-8s %14s %14d %9s %12s",
				op.Operator, op.Device, est, op.Cycles, ratio, rows)
			if withSrc {
				src := "-"
				if op.EstSource != "" {
					src = op.EstSource
				}
				fmt.Fprintf(&b, " %-10s", src)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteChromeTrace exports the record as a self-contained Chrome trace:
// the lifecycle phases render as sequential slices, and the execution
// phase carries one nested slice per operator, scaled to the operator's
// share of the measured cycles, with predicted and actual counts in the
// slice args.
func (r *FlightRecord) WriteChromeTrace(w io.Writer) error {
	events := []chromeEvent{{
		Name: "query",
		Cat:  "flight",
		Ph:   "X",
		TS:   0,
		Dur:  float64(r.WallMicros),
		PID:  1,
		TID:  1,
		Args: map[string]any{
			"seq":         r.Seq,
			"sql":         r.SQL,
			"fingerprint": r.Fingerprint,
			"status":      r.Status,
			"device":      r.Device,
			"cycles":      r.Cycles,
			"est_cycles":  r.EstCycles,
		},
	}}
	var cursor, execStart, execDur float64
	for _, p := range r.Phases {
		events = append(events, chromeEvent{
			Name: p.Name, Cat: "flight", Ph: "X",
			TS: cursor, Dur: float64(p.Micros), PID: 1, TID: 2,
		})
		if p.Name == "exec" || p.Name == "execute" {
			execStart, execDur = cursor, float64(p.Micros)
		}
		cursor += float64(p.Micros)
	}
	// Operator slices: wall time inside the execution phase, apportioned by
	// each operator's share of the measured cycles.
	var totalCycles int64
	for _, op := range r.Ops {
		if op.Cycles > 0 {
			totalCycles += op.Cycles
		}
	}
	if totalCycles > 0 && execDur > 0 {
		cursor = execStart
		for _, op := range r.Ops {
			if op.Cycles <= 0 {
				continue
			}
			d := execDur * float64(op.Cycles) / float64(totalCycles)
			events = append(events, chromeEvent{
				Name: op.Operator, Cat: "flight", Ph: "X",
				TS: cursor, Dur: d, PID: 1, TID: 3,
				Args: map[string]any{
					"device":     op.Device,
					"cycles":     op.Cycles,
					"est_cycles": op.EstCycles,
					"rows":       op.Rows,
				},
			})
			cursor += d
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{"ms", events})
}

// DefaultFlightCapacity is the recorder's default ring size.
const DefaultFlightCapacity = 256

// FlightRecorder keeps the last N FlightRecords in a ring. Commit and read
// paths take one short mutex hold (copying a record), so the recorder adds
// nanoseconds to a query whose execution simulates millions of cycles.
// A nil *FlightRecorder is a valid no-op.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	seq     uint64 // last assigned sequence number == total records ever
	recs    []FlightRecord
	next    int // ring cursor once len(recs) == cap
	wrapped bool
}

// NewFlightRecorder returns a recorder keeping up to capacity records
// (<= 0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity}
}

// Record commits one record, assigns it the next sequence number, and
// returns that number (0 on a nil recorder).
func (f *FlightRecorder) Record(r FlightRecord) uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	r.Seq = f.seq
	if len(f.recs) < f.cap {
		f.recs = append(f.recs, r)
	} else {
		f.recs[f.next] = r
		f.next = (f.next + 1) % f.cap
		f.wrapped = true
	}
	return r.Seq
}

// Amend applies fn to the record with the given sequence number, if it is
// still in the ring. It reports whether the record was found. The ring is
// small (N queries), so the linear scan is cheap relative to one query.
func (f *FlightRecorder) Amend(seq uint64, fn func(*FlightRecord)) bool {
	if f == nil || seq == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.recs {
		if f.recs[i].Seq == seq {
			fn(&f.recs[i])
			f.recs[i].Seq = seq // the sequence number is the recorder's
			return true
		}
	}
	return false
}

// Get returns a deep copy of the record with the given sequence number.
func (f *FlightRecorder) Get(seq uint64) (FlightRecord, bool) {
	if f == nil {
		return FlightRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.recs {
		if f.recs[i].Seq == seq {
			return f.recs[i].clone(), true
		}
	}
	return FlightRecord{}, false
}

// Snapshot returns deep copies of the retained records, newest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, 0, len(f.recs))
	if f.wrapped {
		for i := f.next - 1; i >= 0; i-- {
			out = append(out, f.recs[i].clone())
		}
		for i := len(f.recs) - 1; i >= f.next; i-- {
			out = append(out, f.recs[i].clone())
		}
	} else {
		for i := len(f.recs) - 1; i >= 0; i-- {
			out = append(out, f.recs[i].clone())
		}
	}
	return out
}

// Len returns the number of retained records.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recs)
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return f.cap
}

// Total returns how many records have ever been committed (records beyond
// the ring capacity have been evicted but still counted).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// FingerprintSQL returns the statement fingerprint flight records carry:
// FNV-1a over the trimmed SQL, rendered as 16 hex digits.
func FingerprintSQL(sql string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, strings.TrimSpace(sql))
	return fmt.Sprintf("%016x", h.Sum64())
}
