package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	sp := tel.StartSpan("query")
	if sp != nil {
		t.Fatal("nil Telemetry should hand out nil spans")
	}
	child := sp.Child("phase")
	child.SetInt("cycles", 1)
	child.SetStr("device", "CAPE")
	child.End()
	sp.End()
	if tel.Trace() != nil || tel.Metrics() != nil {
		t.Fatal("nil Telemetry accessors should return nil")
	}
	var b strings.Builder
	if err := tel.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatalf("nil trace export invalid: %s", b.String())
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.Gauge("y", "").Set(3)
	reg.Histogram("z", "").Observe(1)
	if reg.CounterValue("x") != 0 {
		t.Fatal("nil registry counter should read 0")
	}

	var rec *TraceRecorder
	if rec.Spans() != nil || rec.Evicted() != 0 {
		t.Fatal("nil recorder accessors should be no-ops")
	}
	rec.Reset()
}

func TestSpanTree(t *testing.T) {
	tel := New()
	q := tel.StartSpan("query")
	p := q.Child("parse")
	p.End()
	e := q.Child("execute")
	j := e.Child("join:date")
	j.SetInt("cycles", 42)
	j.End()
	e.End()
	q.SetStr("device", "CAPE")
	q.End()
	q.End() // double End must not double-commit

	spans := tel.Trace().Spans()
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root := byName["query"]
	if root.Parent != 0 || root.Root != root.ID {
		t.Fatalf("root span wrong: %+v", root)
	}
	if byName["parse"].Parent != root.ID || byName["execute"].Parent != root.ID {
		t.Fatal("phases should be children of the root")
	}
	join := byName["join:date"]
	if join.Parent != byName["execute"].ID || join.Root != root.ID {
		t.Fatalf("operator span wrong: %+v", join)
	}
	if cy, ok := join.Int("cycles"); !ok || cy != 42 {
		t.Fatalf("cycles attr = %d,%v", cy, ok)
	}
	if _, ok := join.Int("missing"); ok {
		t.Fatal("missing attr should report absent")
	}
	tree := tel.Trace().TreeString()
	if !strings.Contains(tree, "query") || !strings.Contains(tree, "  execute") ||
		!strings.Contains(tree, "    join:date") {
		t.Fatalf("tree rendering wrong:\n%s", tree)
	}
}

func TestRingEviction(t *testing.T) {
	rec := NewTraceRecorder(3)
	for i := 0; i < 5; i++ {
		rec.start("s", nil).End()
	}
	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("kept %d spans, want 3", len(spans))
	}
	if rec.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", rec.Evicted())
	}
	// The survivors are the three most recent commits, oldest first.
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("wrong survivors: %v %v %v", spans[0].ID, spans[1].ID, spans[2].ID)
	}
	rec.Reset()
	if len(rec.Spans()) != 0 || rec.Evicted() != 0 {
		t.Fatal("Reset should clear spans and eviction count")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tel := New()
	q := tel.StartSpan("query")
	e := q.Child("execute")
	e.SetInt("cycles", 7)
	e.End()
	q.End()

	var b strings.Builder
	if err := tel.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 2 {
		t.Fatalf("unexpected doc: %+v", doc)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "castle" || ev.PID != 1 {
			t.Fatalf("bad event: %+v", ev)
		}
	}
	// Events are sorted by start time: the root opened first.
	if doc.TraceEvents[0].Name != "query" {
		t.Fatalf("first event = %s, want query", doc.TraceEvents[0].Name)
	}
	// Both spans of one tree share the root span's ID as their track.
	if doc.TraceEvents[0].TID != doc.TraceEvents[1].TID {
		t.Fatal("tree spans should share a tid")
	}
	if got := doc.TraceEvents[1].Args["cycles"]; got != float64(7) {
		t.Fatalf("cycles arg = %v", got)
	}
}

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help", L("k", "v"))
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	c.Add(0)    // ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if reg.CounterValue("c_total", L("k", "v")) != 5 {
		t.Fatal("CounterValue mismatch")
	}
	if reg.CounterValue("c_total", L("k", "other")) != 0 {
		t.Fatal("absent series should read 0")
	}
	// Same (name, labels) must return the same underlying series.
	if reg.Counter("c_total", "help", L("k", "v")) != c {
		t.Fatal("lookup should be stable")
	}

	g := reg.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "help")
	h.Observe(1)   // le="1"
	h.Observe(3)   // le="4"
	h.Observe(4)   // le="4" (boundaries are inclusive)
	h.Observe(1e9) // le="2^30"
	if h.Count() != 4 || h.Sum() != 1e9+8 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="4"} 3`,
		`lat_bucket{le="1073741824"} 4`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 1000000008",
		"lat_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The cumulative ladder never decreases.
	if strings.Contains(out, `lat_bucket{le="2"} 0`) {
		t.Fatalf("cumulative count dropped below earlier bucket:\n%s", out)
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("castle_queries_total", "Queries executed.", L("device", "cape")).Inc()
	reg.Counter("castle_queries_total", "Queries executed.", L("device", "cpu")).Add(2)
	reg.Gauge("castle_up", "Liveness.").Set(1)
	reg.Counter("escaped_total", "", L("v", "a\"b\\c\nd")).Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP castle_queries_total Queries executed.",
		"# TYPE castle_queries_total counter",
		`castle_queries_total{device="cape"} 1`,
		`castle_queries_total{device="cpu"} 2`,
		"# TYPE castle_up gauge",
		"castle_up 1",
		`escaped_total{v="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name for deterministic diffs.
	if strings.Index(out, "castle_queries_total") > strings.Index(out, "escaped_total") {
		t.Fatalf("families out of order:\n%s", out)
	}
	// A second render is identical (deterministic ordering within families).
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}

func TestConcurrentUse(t *testing.T) {
	tel := New()
	ctr := tel.Metrics().Counter("n_total", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tel.StartSpan("q")
				c := sp.Child("op")
				c.SetInt("i", int64(i))
				c.End()
				sp.End()
				ctr.Inc()
				tel.Metrics().Histogram("h", "").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if ctr.Value() != 8*200 {
		t.Fatalf("counter = %d, want %d", ctr.Value(), 8*200)
	}
	if got := len(tel.Trace().Spans()); got != 8*200*2 {
		t.Fatalf("spans = %d, want %d", got, 8*200*2)
	}
	var b strings.Builder
	if err := tel.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := tel.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownFormatAndClone(t *testing.T) {
	b := &Breakdown{
		Device:      "CAPE",
		TotalCycles: 100,
		Operators: []OperatorStats{
			{Operator: "prep:date", Cycles: 10, Rows: 5},
			{Operator: "join:date", Cycles: 60, Rows: 5},
			{Operator: "aggregate", Cycles: 25, Rows: 2},
			{Operator: "overhead", Cycles: 5, Rows: -1},
		},
	}
	if b.SumCycles() != b.TotalCycles {
		t.Fatalf("sum %d != total %d", b.SumCycles(), b.TotalCycles)
	}
	out := b.Format()
	for _, want := range []string{"operator", "join:date", "60.0%", "total (CAPE)", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The overhead row renders without a rows value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "overhead") && strings.Contains(line, "-1") {
			t.Fatalf("overhead row should blank its rows cell: %q", line)
		}
	}
	c := b.Clone()
	c.Operators[0].Cycles = 999
	if b.Operators[0].Cycles == 999 {
		t.Fatal("Clone aliases the operator slice")
	}
	var nilB *Breakdown
	if nilB.Clone() != nil || nilB.SumCycles() != 0 || nilB.Format() != "" {
		t.Fatal("nil breakdown accessors should be no-ops")
	}
}

// TestDivergencePctZeroGuards pins the explicit zero handling that replaced
// the old 1-cycle floor: both sides zero is an exact prediction, a single
// zero has no finite symmetric ratio and must come back undefined instead of
// a fabricated number.
func TestDivergencePctZeroGuards(t *testing.T) {
	for _, tc := range []struct {
		est, act int64
		pct      float64
		ok       bool
	}{
		{0, 0, 100, true},
		{-3, 0, 100, true}, // negatives clamp into the zero case
		{0, 500, 0, false},
		{500, 0, 0, false},
		{100, 100, 100, true},
		{200, 100, 200, true},
		{100, 200, 200, true}, // symmetric: under- and over-estimate alike
		{100, 400, 400, true},
	} {
		pct, ok := DivergencePct(tc.est, tc.act)
		if pct != tc.pct || ok != tc.ok {
			t.Errorf("DivergencePct(%d,%d) = %.1f,%v want %.1f,%v",
				tc.est, tc.act, pct, ok, tc.pct, tc.ok)
		}
	}
}

// TestApplyEstimateCellsKeepsZeros: a zero-cycle cell with a source still
// attaches (Estimated becomes true via EstSource), while the legacy
// ApplyEstimates path drops zero values entirely.
func TestApplyEstimateCellsKeepsZeros(t *testing.T) {
	mk := func() *Breakdown {
		return &Breakdown{Device: "CAPE", TotalCycles: 10, Operators: []OperatorStats{
			{Operator: "filter", Cycles: 10, Rows: -1},
			{Operator: "join:date", Cycles: 0, Rows: 0},
			{Operator: "overhead", Cycles: 0, Rows: -1},
		}}
	}

	b := mk()
	n := b.ApplyEstimateCells(map[string]EstimateCell{
		"filter":    {Cycles: 12, Source: "histogram"},
		"join:date": {Cycles: 0, Source: "histogram"},
	})
	if n != 2 {
		t.Fatalf("ApplyEstimateCells matched %d rows, want 2", n)
	}
	if o := b.Operators[1]; !o.Estimated() || o.EstCycles != 0 || o.EstSource != "histogram" {
		t.Fatalf("zero-cycle cell did not attach: %+v", o)
	}
	if b.Operators[2].Estimated() {
		t.Fatal("unpriced row reports an estimate")
	}

	// The legacy path drops the zero: join:date stays unestimated.
	lb := mk()
	if n := lb.ApplyEstimates(map[string]int64{"filter": 12, "join:date": 0}); n != 1 {
		t.Fatalf("ApplyEstimates matched %d rows, want 1", n)
	}
	if lb.Operators[1].Estimated() {
		t.Fatal("legacy path attached a zero estimate")
	}

	// Format: est-src column appears, the true zero renders an exact 1.00
	// ratio instead of a floored fiction, unpriced rows render dashes.
	out := b.Format()
	if !strings.Contains(out, "est-src") || !strings.Contains(out, "histogram") {
		t.Fatalf("Format lacks source column:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "join:date") && !strings.Contains(line, "1.00") {
			t.Fatalf("zero/zero row did not render an exact ratio: %q", line)
		}
		if strings.HasPrefix(line, "overhead") && !strings.Contains(line, "-") {
			t.Fatalf("unpriced row did not render dashes: %q", line)
		}
	}
}
