package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one span attribute. Exactly one of Int/Str is meaningful; IsInt
// distinguishes them (span attributes carry simulated cycle counts and
// traffic bytes far more often than strings, and int64 keeps them exact).
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsInt bool
}

// Span is one open interval of the query lifecycle (query, phase, or
// operator). Spans form a tree through Child; End closes the span and
// commits it to the recorder's ring buffer. A nil *Span is a valid no-op,
// so call sites need no enabled-checks.
type Span struct {
	rec   *TraceRecorder
	name  string
	id    uint64
	paren uint64
	root  uint64
	start time.Time
	attrs []Attr
	ended bool
}

// Child opens a sub-span. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.start(name, s)
}

// SetInt attaches an integer attribute (cycles, bytes, rows...).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v, IsInt: true})
}

// SetStr attaches a string attribute (device, plan shape...).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
}

// End closes the span and records it. Safe to call more than once; only
// the first call commits.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.commit(s, time.Now())
}

// SpanRecord is a completed span as stored by the recorder.
type SpanRecord struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 for roots
	Root   uint64 // ID of the tree's root span (its own ID for roots)
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Int returns the value of an integer attribute (0, false when absent).
func (r SpanRecord) Int(key string) (int64, bool) {
	for _, a := range r.Attrs {
		if a.Key == key && a.IsInt {
			return a.Int, true
		}
	}
	return 0, false
}

// TraceRecorder stores completed spans in a fixed-capacity ring buffer.
// When the buffer is full the oldest spans are evicted (and counted), so a
// long-lived process keeps the most recent queries' traces.
type TraceRecorder struct {
	mu      sync.Mutex
	epoch   time.Time
	cap     int
	spans   []SpanRecord
	next    int // ring cursor once len(spans) == cap
	wrapped bool
	nextID  uint64
	evicted int64
}

// DefaultSpanCapacity is the recorder's default ring size.
const DefaultSpanCapacity = 8192

// NewTraceRecorder returns a recorder keeping up to capacity completed
// spans (<= 0 selects DefaultSpanCapacity).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &TraceRecorder{epoch: time.Now(), cap: capacity}
}

// start opens a span; parent == nil makes a root.
func (t *TraceRecorder) start(name string, parent *Span) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{rec: t, name: name, id: id, root: id, start: time.Now()}
	if parent != nil {
		s.paren = parent.id
		s.root = parent.root
	}
	return s
}

// commit appends a finished span to the ring.
func (t *TraceRecorder) commit(s *Span, end time.Time) {
	r := SpanRecord{
		Name:   s.name,
		ID:     s.id,
		Parent: s.paren,
		Root:   s.root,
		Start:  s.start,
		Dur:    end.Sub(s.start),
		Attrs:  s.attrs,
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, r)
		return
	}
	t.spans[t.next] = r
	t.next = (t.next + 1) % t.cap
	t.wrapped = true
	t.evicted++
}

// Spans returns a copy of the recorded spans in completion order.
func (t *TraceRecorder) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	if t.wrapped {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
	} else {
		out = append(out, t.spans...)
	}
	return out
}

// Evicted reports how many spans the ring buffer has overwritten.
func (t *TraceRecorder) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Reset drops all recorded spans (the epoch is preserved so timestamps
// from before and after a reset stay comparable).
func (t *TraceRecorder) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = t.spans[:0]
	t.next = 0
	t.wrapped = false
	t.evicted = 0
}

// chromeEvent is one Chrome trace-event object ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace epoch
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace-event JSON.
// Each span tree renders on its own track (tid = root span ID), and
// synchronous nesting shows as stacked slices in Perfetto.
func (t *TraceRecorder) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "castle",
			Ph:   "X",
			TS:   float64(s.Start.Sub(t.epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.Root,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				if a.IsInt {
					ev.Args[a.Key] = a.Int
				} else {
					ev.Args[a.Key] = a.Str
				}
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{"ms", events})
}

// TreeString renders the recorded spans as an indented tree (debugging and
// test-failure aid; the Chrome export is the machine-readable form).
func (t *TraceRecorder) TreeString() string {
	spans := t.Spans()
	children := make(map[uint64][]SpanRecord)
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var b []byte
	var walk func(s SpanRecord, depth int)
	walk = func(s SpanRecord, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, "  "...)
		}
		b = append(b, fmt.Sprintf("%s (%.3fms)\n", s.Name, float64(s.Dur.Nanoseconds())/1e6)...)
		cs := children[s.ID]
		sort.SliceStable(cs, func(i, j int) bool { return cs[i].Start.Before(cs[j].Start) })
		for _, c := range cs {
			walk(c, depth+1)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, r := range roots {
		walk(r, 0)
	}
	return string(b)
}
