package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		seq := f.Record(FlightRecord{SQL: fmt.Sprintf("q%d", i), Cycles: int64(i)})
		if seq != uint64(i) {
			t.Fatalf("record %d assigned seq %d", i, seq)
		}
	}
	if f.Len() != 4 || f.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", f.Len(), f.Cap())
	}
	if f.Total() != 10 {
		t.Fatalf("total=%d, want 10", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len=%d, want 4", len(snap))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if snap[i].Seq != want || snap[i].SQL != fmt.Sprintf("q%d", want) {
			t.Fatalf("snapshot[%d] = seq %d sql %q, want seq %d", i, snap[i].Seq, snap[i].SQL, want)
		}
	}
	// Evicted records are gone; retained ones are reachable by seq.
	if _, ok := f.Get(3); ok {
		t.Fatal("evicted record #3 still reachable")
	}
	if rec, ok := f.Get(8); !ok || rec.SQL != "q8" {
		t.Fatalf("Get(8) = %+v, %v", rec, ok)
	}
}

func TestFlightRecorderAmend(t *testing.T) {
	f := NewFlightRecorder(2)
	seq := f.Record(FlightRecord{SQL: "q", Phases: []FlightPhase{{Name: "total", Micros: 5}}})
	ok := f.Amend(seq, func(r *FlightRecord) {
		r.WallMicros = 42
		r.Phases = []FlightPhase{{Name: "queue", Micros: 30}, {Name: "exec", Micros: 12}}
		r.Seq = 999 // recorder must not let amendments corrupt identity
	})
	if !ok {
		t.Fatal("amend missed a live record")
	}
	rec, ok := f.Get(seq)
	if !ok || rec.Seq != seq || rec.WallMicros != 42 {
		t.Fatalf("amended record: %+v, %v", rec, ok)
	}
	if rec.SumPhaseMicros() != 42 || rec.PhaseMicros("queue") != 30 {
		t.Fatalf("amended phases: %+v", rec.Phases)
	}
	if f.Amend(seq+100, func(r *FlightRecord) {}) {
		t.Fatal("amend found a record that was never committed")
	}
	// Snapshots are deep copies: mutating one must not reach the ring.
	snap := f.Snapshot()
	snap[0].Phases[0].Micros = -1
	if rec, _ := f.Get(seq); rec.Phases[0].Micros != 30 {
		t.Fatal("snapshot aliases ring storage")
	}
}

// TestFlightRecorderConcurrent hammers the recorder from many goroutines
// (run with -race): every record must be committed exactly once, sequence
// numbers must be dense, and no snapshot may observe a torn record.
func TestFlightRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 200
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := f.Record(FlightRecord{
					SQL:    fmt.Sprintf("w%d-i%d", w, i),
					Cycles: 7,
					Phases: []FlightPhase{{Name: "prepare", Micros: 1}, {Name: "execute", Micros: 6}},
				})
				f.Amend(seq, func(r *FlightRecord) { r.WallMicros = 7 })
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Concurrent readers: every observed record must be internally
	// consistent (never torn across fields).
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		for _, r := range f.Snapshot() {
			if r.Seq == 0 || r.Cycles != 7 || len(r.Phases) != 2 || r.SumPhaseMicros() != 7 {
				t.Fatalf("torn record observed: %+v", r)
			}
		}
	}
	if f.Total() != writers*perWriter {
		t.Fatalf("total=%d, want %d (records lost or double-counted)", f.Total(), writers*perWriter)
	}
	if f.Len() != 64 {
		t.Fatalf("len=%d, want full ring of 64", f.Len())
	}
	seen := map[uint64]bool{}
	for _, r := range f.Snapshot() {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", r.Seq)
		}
		seen[r.Seq] = true
		if r.WallMicros != 7 {
			t.Fatalf("record %d missed its amendment: %+v", r.Seq, r)
		}
	}
}

func TestFlightRecordChromeTrace(t *testing.T) {
	rec := FlightRecord{
		Seq: 3, SQL: "SELECT 1", Fingerprint: FingerprintSQL("SELECT 1"),
		Start: time.Now(), WallMicros: 100, Status: "ok", Device: "CAPE",
		Cycles: 90, EstCycles: 80,
		Phases: []FlightPhase{
			{Name: "queue", Micros: 10}, {Name: "lease", Micros: 5},
			{Name: "exec", Micros: 80}, {Name: "serialize", Micros: 5},
		},
		Ops: []FlightOp{
			{Operator: "prep:date", Device: "CAPE", EstCycles: 20, Cycles: 30, Rows: 365},
			{Operator: "filter", Device: "CAPE", EstCycles: 60, Cycles: 60, Rows: 60000},
		},
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 1 query slice + 4 phase slices + 2 operator slices.
	if len(trace.TraceEvents) != 7 {
		t.Fatalf("trace has %d events, want 7", len(trace.TraceEvents))
	}
	var phaseSum, opSum float64
	for _, e := range trace.TraceEvents {
		switch e.TID {
		case 2:
			phaseSum += e.Dur
		case 3:
			opSum += e.Dur
			if e.TS < 15 || e.TS+e.Dur > 95.001 {
				t.Fatalf("operator slice %q [%f, %f] escapes the exec phase [15, 95]", e.Name, e.TS, e.TS+e.Dur)
			}
		}
	}
	if phaseSum != 100 {
		t.Fatalf("phase slices sum to %f µs, want 100", phaseSum)
	}
	if opSum < 79.999 || opSum > 80.001 {
		t.Fatalf("operator slices sum to %f µs, want the 80µs exec phase", opSum)
	}
}

func TestFlightRecordFormat(t *testing.T) {
	rec := FlightRecord{
		Seq: 1, SQL: "SELECT 1", Status: "ok", Device: "CAPE",
		WallMicros: 1000, Cycles: 90, EstCycles: 80, AltEstCycles: 200,
		Phases: []FlightPhase{{Name: "exec", Micros: 1000}},
		Ops:    []FlightOp{{Operator: "filter", Device: "CAPE", EstCycles: 60, Cycles: 60, Rows: 5}},
	}
	out := rec.Format()
	for _, want := range []string{"query #1 [ok]", "alt_est=200", "phases:", "exec=1.000ms", "est/act", "filter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestFingerprintSQL(t *testing.T) {
	a := FingerprintSQL("SELECT 1")
	if b := FingerprintSQL("  SELECT 1  \n"); a != b {
		t.Fatalf("fingerprint not whitespace-insensitive: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex digits", a)
	}
	if a == FingerprintSQL("SELECT 2") {
		t.Fatal("distinct statements collided")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	if seq := f.Record(FlightRecord{}); seq != 0 {
		t.Fatalf("nil Record = %d", seq)
	}
	if f.Amend(1, func(*FlightRecord) {}) || f.Len() != 0 || f.Cap() != 0 || f.Total() != 0 {
		t.Fatal("nil recorder is not a no-op")
	}
	if _, ok := f.Get(1); ok || f.Snapshot() != nil {
		t.Fatal("nil recorder returned data")
	}
}
